//! Property tests for the simulator-level facts that the collapse layer's
//! quiet-source certificate rests on, over random circuits from
//! [`delayavf_sim::testutil`]:
//!
//! 1. an edge whose source net does not transition in the fault-free cycle
//!    absorbs *any* extra delay without changing the latched state — on the
//!    full event simulator and on the incremental delta engine alike, so
//!    the certificate is independent of the engine knob;
//! 2. the contrapositive: whenever a delay fault changes what latches, the
//!    faulted edge's source net transitioned in the fault-free cycle;
//! 3. edges sourced by constant nets are quiet in every cycle, whatever
//!    the inputs and state do.

use delayavf_netlist::{Circuit, Driver, EdgeId, Topology};
use delayavf_sim::testutil::{random_circuit, GateSpec};
use delayavf_sim::{settle, DeltaEventSim, EventSim, FaultSpec};
use delayavf_timing::{Picos, TechLibrary, TimingModel};
use proptest::prelude::*;

/// One simulated cycle's worth of context: settled previous values, the
/// state latched at the clock edge, and this cycle's input words.
struct Cycle {
    prev_values: Vec<bool>,
    state: Vec<bool>,
    inputs: Vec<u64>,
}

fn cycle_context(
    c: &Circuit,
    topo: &Topology,
    prev_in: u64,
    next_in: u64,
    state_bits: u8,
) -> Cycle {
    let state: Vec<bool> = (0..c.num_dffs())
        .map(|i| (state_bits >> (i % 8)) & 1 == 1)
        .collect();
    let prev_values = settle(c, topo, &state, &[prev_in]);
    Cycle {
        prev_values,
        state,
        inputs: vec![next_in],
    }
}

fn probe_extras(timing: &TimingModel) -> [Picos; 4] {
    let clock = timing.clock_period();
    [1, clock / 2, clock, 2 * clock]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn a_quiet_source_silences_every_delay_fault(
        gates in prop::collection::vec(any::<GateSpec>(), 10..60),
        prev_in: u64,
        next_in: u64,
        state_bits: u8,
    ) {
        let c = random_circuit(8, 8, &gates);
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        let cy = cycle_context(&c, &topo, prev_in & 0xff, next_in & 0xff, state_bits);

        let mut full = EventSim::new(&c, &topo, &timing);
        let mut delta = DeltaEventSim::new(&c, &topo, &timing);
        let golden_latch =
            full.latch_cycle(&cy.prev_values, &cy.state, &cy.inputs, None).to_vec();
        let quiet: Vec<bool> = full.changed_nets().to_vec();

        for e in (0..topo.edges().len()).map(EdgeId::from_index) {
            let source = topo.edge(e).source;
            if quiet[source.index()] {
                continue;
            }
            for extra in probe_extras(&timing) {
                let fault = FaultSpec { edge: e, extra };
                let faulty = full
                    .latch_cycle(&cy.prev_values, &cy.state, &cy.inputs, Some(fault))
                    .to_vec();
                prop_assert_eq!(
                    &faulty, &golden_latch,
                    "quiet edge {:?} (extra {}) changed the latch", e, extra
                );
                let (delta_latch, _) =
                    delta.latch_cycle(0, &cy.prev_values, &cy.state, &cy.inputs, fault);
                prop_assert_eq!(
                    delta_latch, &golden_latch[..],
                    "delta engine disagrees on quiet edge {:?} (extra {})", e, extra
                );
            }
        }
    }

    #[test]
    fn a_deviating_fault_implies_a_toggling_source(
        gates in prop::collection::vec(any::<GateSpec>(), 10..60),
        prev_in: u64,
        next_in: u64,
        state_bits: u8,
        extra_sel: u16,
    ) {
        let c = random_circuit(8, 8, &gates);
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        let cy = cycle_context(&c, &topo, prev_in & 0xff, next_in & 0xff, state_bits);

        let mut full = EventSim::new(&c, &topo, &timing);
        let golden_latch =
            full.latch_cycle(&cy.prev_values, &cy.state, &cy.inputs, None).to_vec();
        let changed: Vec<bool> = full.changed_nets().to_vec();
        let extras = probe_extras(&timing);
        let extra = extras[usize::from(extra_sel) % extras.len()];

        for e in (0..topo.edges().len()).map(EdgeId::from_index) {
            let fault = FaultSpec { edge: e, extra };
            let faulty =
                full.latch_cycle(&cy.prev_values, &cy.state, &cy.inputs, Some(fault)).to_vec();
            if faulty != golden_latch {
                let source = topo.edge(e).source;
                prop_assert!(
                    changed[source.index()],
                    "edge {:?} deviated with a quiet source (extra {})", e, extra
                );
            }
        }
    }

    #[test]
    fn constant_sources_are_quiet_in_every_cycle(
        gates in prop::collection::vec(any::<GateSpec>(), 10..60),
        prev_in: u64,
        next_in: u64,
        state_bits: u8,
    ) {
        let c = random_circuit(8, 8, &gates);
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        let cy = cycle_context(&c, &topo, prev_in & 0xff, next_in & 0xff, state_bits);

        let mut full = EventSim::new(&c, &topo, &timing);
        let golden_latch =
            full.latch_cycle(&cy.prev_values, &cy.state, &cy.inputs, None).to_vec();
        let quiet: Vec<bool> = full.changed_nets().to_vec();

        for e in (0..topo.edges().len()).map(EdgeId::from_index) {
            let source = topo.edge(e).source;
            if !matches!(c.net(source).driver(), Driver::Const(_)) {
                continue;
            }
            prop_assert!(!quiet[source.index()], "a constant net transitioned");
            let extra = 2 * timing.clock_period();
            let faulty = full
                .latch_cycle(&cy.prev_values, &cy.state, &cy.inputs, Some(FaultSpec { edge: e, extra }))
                .to_vec();
            prop_assert_eq!(
                &faulty, &golden_latch,
                "a frozen constant edge {:?} changed the latch", e
            );
        }
    }
}
