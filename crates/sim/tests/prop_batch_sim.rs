//! Property tests for the bit-parallel batch replay engine on randomly
//! generated circuits: every lane of a [`BatchSim`] batch — partial or
//! completely full — matches an independent scalar [`CycleSim`] replay
//! bit-for-bit, cycle by cycle, under the closed environment the batch
//! engine assumes (primary inputs follow the recorded golden trace).
//! Checked per lane and per cycle: flip-flop state, output-port words,
//! the state-divergence mask, the output-divergence mask returned by
//! [`BatchSim::step`], and the enumerated divergence set.

use delayavf_netlist::{Circuit, DffId, Topology};
use delayavf_sim::testutil::{pick_flips, random_circuit, GateSpec};
use delayavf_sim::{
    BatchSim, ConstEnvironment, CycleSim, GoldenTrace, LaneMask, LaneWord, MAX_LANES,
};
use proptest::prelude::*;

/// Drives `scenarios` through one batch and, in lockstep, through one
/// scalar replay per lane, asserting bit-for-bit agreement every cycle.
fn check_batch_against_scalars(
    c: &Circuit,
    topo: &Topology,
    trace: &GoldenTrace,
    boundary: u64,
    scenarios: &[Vec<DffId>],
    env: &ConstEnvironment,
) -> Result<(), TestCaseError> {
    let n = trace.num_cycles();
    let mut batch = BatchSim::new(c, topo);
    batch.begin(boundary, scenarios, trace);

    let mut scalars: Vec<CycleSim> = scenarios
        .iter()
        .map(|flips| {
            let mut s = CycleSim::new(c, topo);
            s.restore(
                boundary,
                &trace.state_bits_at(boundary, c.num_dffs()),
                trace.outputs_at(boundary - 1),
            );
            for &f in flips {
                s.flip_dff(f);
            }
            s
        })
        .collect();

    for (lane, s) in scalars.iter().enumerate() {
        prop_assert_eq!(
            batch.lane_state_bits(lane, trace),
            s.state().to_vec(),
            "boundary state, lane {}",
            lane
        );
        prop_assert_eq!(
            batch.divergence_mask().get(lane),
            s.state() != &trace.state_bits_at(boundary, c.num_dffs())[..],
            "boundary divergence bit, lane {}",
            lane
        );
    }

    let mut env = env.clone();
    while batch.cycle() < n {
        let out_div = batch.step(trace);
        let cyc = batch.cycle();
        let golden_state = trace.state_bits_at(cyc, c.num_dffs());
        let golden_outputs = trace.outputs_at(cyc - 1);
        for (lane, s) in scalars.iter_mut().enumerate() {
            s.step(&mut env);
            prop_assert_eq!(s.cycle(), cyc);
            prop_assert_eq!(
                batch.lane_state_bits(lane, trace),
                s.state().to_vec(),
                "state at cycle {}, lane {}",
                cyc,
                lane
            );
            prop_assert_eq!(
                batch.lane_outputs(lane, trace),
                s.last_outputs().to_vec(),
                "outputs at cycle {}, lane {}",
                cyc,
                lane
            );
            prop_assert_eq!(
                out_div.get(lane),
                s.last_outputs() != golden_outputs,
                "output-divergence bit at cycle {}, lane {}",
                cyc,
                lane
            );
            prop_assert_eq!(
                batch.divergence_mask().get(lane),
                s.state() != &golden_state[..],
                "state-divergence bit at cycle {}, lane {}",
                cyc,
                lane
            );
            let expect: Vec<DffId> = c
                .dffs()
                .enumerate()
                .filter(|&(i, _)| s.state()[i] != golden_state[i])
                .map(|(_, (id, _))| id)
                .collect();
            prop_assert_eq!(
                batch.lane_divergence(lane, trace),
                expect,
                "divergence set at cycle {}, lane {}",
                cyc,
                lane
            );
        }
        // Lanes beyond the batch ride the golden trajectory exactly.
        if scenarios.len() < MAX_LANES {
            let used = LaneMask::prefix(scenarios.len());
            prop_assert!(!(out_div & !used).any(), "unused lanes out-diverged");
            prop_assert!(
                !(batch.divergence_mask() & !used).any(),
                "unused lanes state-diverged"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Partial batches: 1–7 lanes, so most of the word is unused.
    #[test]
    fn every_lane_of_a_partial_batch_matches_a_scalar_replay(
        gates in prop::collection::vec(any::<GateSpec>(), 10..60),
        in_val: u64,
        boundary_sel: u16,
        masks in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let c = random_circuit(8, 8, &gates);
        let topo = Topology::new(&c);
        let env = ConstEnvironment::new(vec![in_val & 0xff]);
        let trace = GoldenTrace::record(&c, &topo, &mut env.clone(), 8, &[]).0;
        let boundary = 1 + u64::from(boundary_sel) % (trace.num_cycles() - 1);
        let scenarios: Vec<Vec<DffId>> = masks.iter().map(|&m| pick_flips(&c, m)).collect();
        check_batch_against_scalars(&c, &topo, &trace, boundary, &scenarios, &env)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Completely full batches: all 64 lanes carry an independent scenario.
    #[test]
    fn every_lane_of_a_full_batch_matches_a_scalar_replay(
        gates in prop::collection::vec(any::<GateSpec>(), 10..60),
        in_val: u64,
        boundary_sel: u16,
        mask_seed: u8,
    ) {
        let c = random_circuit(8, 8, &gates);
        let topo = Topology::new(&c);
        let env = ConstEnvironment::new(vec![in_val & 0xff]);
        let trace = GoldenTrace::record(&c, &topo, &mut env.clone(), 8, &[]).0;
        let boundary = 1 + u64::from(boundary_sel) % (trace.num_cycles() - 1);
        let scenarios: Vec<Vec<DffId>> = (0..MAX_LANES)
            .map(|lane| pick_flips(&c, mask_seed.wrapping_add(lane as u8)))
            .collect();
        check_batch_against_scalars(&c, &topo, &trace, boundary, &scenarios, &env)?;
    }
}
