//! Property tests for the incremental timing-aware engine on randomly
//! generated circuits: [`DeltaEventSim`] must latch **bit-identical** values
//! to the full [`EventSim`] for every injected fault — the delta engine only
//! changes how much work is done, never the answer.
//!
//! 1. random circuits × random faults (edge, extra): latched state and the
//!    derived dynamically reachable set match the full event simulator,
//!    while the golden waveform is built once per cycle and shared by every
//!    injection at that cycle;
//! 2. fault-free cycles (`extra = 0`): the delta run reconverges to the
//!    cached golden waveform, which itself equals the full fault-free run.

use delayavf_netlist::{Circuit, EdgeId, Topology};
use delayavf_sim::testutil::{random_circuit, GateSpec};
use delayavf_sim::{settle, DeltaEventSim, EventSim, FaultSpec};
use delayavf_timing::{TechLibrary, TimingModel};
use proptest::prelude::*;

/// One simulated cycle's worth of context: settled previous values, the
/// state latched at the clock edge, and this cycle's input words.
struct Cycle {
    prev_values: Vec<bool>,
    state: Vec<bool>,
    inputs: Vec<u64>,
}

fn cycle_context(
    c: &Circuit,
    topo: &Topology,
    prev_in: u64,
    next_in: u64,
    state_bits: u8,
) -> Cycle {
    let state: Vec<bool> = (0..c.num_dffs())
        .map(|i| (state_bits >> (i % 8)) & 1 == 1)
        .collect();
    let prev_values = settle(c, topo, &state, &[prev_in]);
    Cycle {
        prev_values,
        state,
        inputs: vec![next_in],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn delta_latches_identically_to_the_full_event_sim(
        gates in prop::collection::vec(any::<GateSpec>(), 10..60),
        prev_in: u64,
        next_in: u64,
        state_bits: u8,
        extra_sel: u16,
    ) {
        let c = random_circuit(8, 8, &gates);
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        let cy = cycle_context(&c, &topo, prev_in & 0xff, next_in & 0xff, state_bits);

        let mut full = EventSim::new(&c, &topo, &timing);
        let mut delta = DeltaEventSim::new(&c, &topo, &timing);
        let golden_latch =
            full.latch_cycle(&cy.prev_values, &cy.state, &cy.inputs, None).to_vec();

        let clock = timing.clock_period();
        let extras = [0, 1, clock / 4, clock / 2, clock - 1, clock, 2 * clock];
        let extra = extras[usize::from(extra_sel) % extras.len()];
        let mut builds = 0u64;
        for e in (0..topo.edges().len()).map(EdgeId::from_index) {
            let fault = FaultSpec { edge: e, extra };
            let want =
                full.latch_cycle(&cy.prev_values, &cy.state, &cy.inputs, Some(fault)).to_vec();
            let (got, outcome) =
                delta.latch_cycle(0, &cy.prev_values, &cy.state, &cy.inputs, fault);
            prop_assert_eq!(got, &want[..], "latched state, edge {:?} extra {}", e, extra);
            // The dynamically reachable set (Definition 3) is derived from
            // the latched values, so it matches too — spelled out because it
            // is what the injector consumes.
            let want_dyn: Vec<usize> =
                (0..want.len()).filter(|&i| want[i] != golden_latch[i]).collect();
            let got_dyn: Vec<usize> =
                (0..got.len()).filter(|&i| got[i] != golden_latch[i]).collect();
            prop_assert_eq!(got_dyn, want_dyn, "dynamic set, edge {:?} extra {}", e, extra);
            builds += u64::from(outcome.built_golden);
        }
        prop_assert_eq!(builds, 1, "one golden build shared by all edges at the cycle");
    }

    #[test]
    fn zero_extra_faults_reconverge_to_the_golden_waveform(
        gates in prop::collection::vec(any::<GateSpec>(), 10..60),
        prev_in: u64,
        next_in: u64,
        state_bits: u8,
        edge_sel: u16,
    ) {
        let c = random_circuit(8, 8, &gates);
        let topo = Topology::new(&c);
        let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
        let cy = cycle_context(&c, &topo, prev_in & 0xff, next_in & 0xff, state_bits);

        let mut full = EventSim::new(&c, &topo, &timing);
        let golden_latch =
            full.latch_cycle(&cy.prev_values, &cy.state, &cy.inputs, None).to_vec();
        let mut delta = DeltaEventSim::new(&c, &topo, &timing);
        let edge = EdgeId::from_index(usize::from(edge_sel) % topo.edges().len());
        let (got, _) = delta.latch_cycle(
            0,
            &cy.prev_values,
            &cy.state,
            &cy.inputs,
            FaultSpec { edge, extra: 0 },
        );
        prop_assert_eq!(got, &golden_latch[..], "a zero-extra fault is fault-free");
    }
}
