//! Criterion wrappers around the table/figure generators: one benchmark per
//! experiment of the paper's evaluation, at smoke-test sampling so `cargo
//! bench` completes quickly. The full-resolution reports come from the
//! `repro` binary (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};

use delayavf_bench::{experiments, Harness, Opts};

fn quick_opts() -> Opts {
    Opts::quick()
}

fn bench_tables(c: &mut Criterion) {
    c.bench_function("experiment_table1", |b| {
        let mut h = Harness::build();
        b.iter(|| experiments::table1(&mut h))
    });
    c.bench_function("experiment_table2", |b| {
        let mut h = Harness::build();
        let opts = quick_opts();
        b.iter(|| experiments::table2(&mut h, &opts))
    });
    c.bench_function("experiment_table3", |b| {
        let mut h = Harness::build();
        let opts = quick_opts();
        b.iter(|| experiments::table3(&mut h, &opts))
    });
}

fn bench_figures(c: &mut Criterion) {
    c.bench_function("experiment_fig6", |b| {
        let mut h = Harness::build();
        b.iter(|| experiments::fig6(&mut h))
    });
    c.bench_function("experiment_fig7", |b| {
        let mut h = Harness::build();
        let opts = quick_opts();
        b.iter(|| experiments::fig7(&mut h, &opts))
    });
    c.bench_function("experiment_fig8", |b| {
        let mut h = Harness::build();
        let opts = quick_opts();
        b.iter(|| experiments::fig8(&mut h, &opts))
    });
    c.bench_function("experiment_fig9", |b| {
        let mut h = Harness::build();
        let opts = quick_opts();
        b.iter(|| experiments::fig9(&mut h, &opts))
    });
    c.bench_function("experiment_fig10", |b| {
        let mut h = Harness::build();
        let opts = quick_opts();
        b.iter(|| experiments::fig10(&mut h, &opts))
    });
    c.bench_function("experiment_multibit", |b| {
        let mut h = Harness::build();
        let opts = quick_opts();
        b.iter(|| experiments::multibit(&mut h, &opts))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tables, bench_figures
}
criterion_main!(benches);
