//! Criterion benchmarks of the framework's computational kernels, including
//! the ablations called out in DESIGN.md (pre-filters on/off, faulty vs
//! fault-free timing simulation).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use delayavf::{prepare_golden, Injector};
use delayavf_netlist::{EdgeId, Topology};
use delayavf_rvcore::{build_core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_sim::{settle, CycleSim, DeltaEventSim, EventSim, FaultSpec};
use delayavf_timing::{Picos, TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

struct Fix {
    core: delayavf_rvcore::Core,
    topo: Topology,
    timing: TimingModel,
    program: delayavf_isa::Program,
}

fn fix() -> Fix {
    let core = build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
    let program = Kernel::Libstrstr
        .build(Scale::Tiny)
        .assemble()
        .expect("assembles");
    Fix {
        core,
        topo,
        timing,
        program,
    }
}

fn bench_build_and_sta(c: &mut Criterion) {
    c.bench_function("build_core", |b| {
        b.iter(|| build_core(CoreConfig::default()))
    });
    let core = build_core(CoreConfig::default());
    c.bench_function("topology", |b| b.iter(|| Topology::new(&core.circuit)));
    let topo = Topology::new(&core.circuit);
    let lib = TechLibrary::nangate45_like();
    c.bench_function("sta_analyze", |b| {
        b.iter(|| TimingModel::analyze(&core.circuit, &topo, &lib))
    });
}

fn bench_cycle_sim(c: &mut Criterion) {
    let f = fix();
    c.bench_function("cycle_sim_100_cycles", |b| {
        b.iter_batched(
            || {
                (
                    CycleSim::new(&f.core.circuit, &f.topo),
                    MemEnv::new(&f.core.circuit, DEFAULT_RAM_BYTES, &f.program),
                )
            },
            |(mut sim, mut env)| sim.run(&mut env, 100),
            BatchSize::SmallInput,
        )
    });
}

fn bench_event_sim(c: &mut Criterion) {
    let f = fix();
    let env = MemEnv::new(&f.core.circuit, DEFAULT_RAM_BYTES, &f.program);
    let golden = prepare_golden(&f.core.circuit, &f.topo, &env, 100_000, 4);
    let cycle = golden.sampled_cycles[1];
    let nd = f.core.circuit.num_dffs();
    let prev_state = golden.trace.state_bits_at(cycle - 1, nd);
    let prev_values = settle(
        &f.core.circuit,
        &f.topo,
        &prev_state,
        golden.trace.inputs_at(cycle - 1),
    );
    let new_state = golden.trace.state_bits_at(cycle, nd);
    let inputs = golden.trace.inputs_at(cycle).to_vec();
    let edge = f.topo.structure_edges(&f.core.circuit, "alu").unwrap()[0];
    let mut sim = EventSim::new(&f.core.circuit, &f.topo, &f.timing);
    let extra = f.timing.clock_period() / 2;
    c.bench_function("event_sim_faulty_cycle", |b| {
        b.iter(|| {
            let _ = sim.latch_cycle(
                &prev_values,
                &new_state,
                &inputs,
                Some(FaultSpec { edge, extra }),
            );
        })
    });
    c.bench_function("event_sim_fault_free_cycle", |b| {
        b.iter(|| {
            let _ = sim.latch_cycle(&prev_values, &new_state, &inputs, None);
        })
    });
    // The incremental engine on the same injection, with the cycle's golden
    // waveform already cached (the steady state inside a campaign, where one
    // build is shared by every edge injected at the cycle).
    let mut delta = DeltaEventSim::new(&f.core.circuit, &f.topo, &f.timing);
    let _ = delta.latch_cycle(
        cycle,
        &prev_values,
        &new_state,
        &inputs,
        FaultSpec { edge, extra },
    );
    c.bench_function("delta_sim_faulty_cycle_warm", |b| {
        b.iter(|| {
            let _ = delta.latch_cycle(
                cycle,
                &prev_values,
                &new_state,
                &inputs,
                FaultSpec { edge, extra },
            );
        })
    });
    // Cold: invalidate the cache each iteration by alternating cycles, so
    // every injection pays for a fresh golden-waveform build.
    c.bench_function("delta_sim_faulty_cycle_cold", |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let _ = delta.latch_cycle(
                u64::from(flip),
                &prev_values,
                &new_state,
                &inputs,
                FaultSpec { edge, extra },
            );
        })
    });
}

fn bench_static_reach(c: &mut Criterion) {
    let f = fix();
    let edges = f.topo.structure_edges(&f.core.circuit, "alu").unwrap();
    let extra = f.timing.clock_period() / 2;
    c.bench_function("statically_reachable_per_edge", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let e = edges[i % edges.len()];
            i += 1;
            f.timing
                .statically_reachable(&f.core.circuit, &f.topo, e, extra)
        })
    });
    // Ablation: the O(1) pre-filter that makes low-d sweeps cheap.
    c.bench_function("path_through_edge_prefilter", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let e = edges[i % edges.len()];
            i += 1;
            f.timing.path_through_edge(&f.core.circuit, &f.topo, e)
        })
    });
    // Ablation: the reference forward walk the sorted slack table replaces.
    c.bench_function("statically_reachable_walk_per_edge", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let e = edges[i % edges.len()];
            i += 1;
            f.timing
                .statically_reachable_walk(&f.core.circuit, &f.topo, e, extra)
        })
    });
}

fn bench_injection(c: &mut Criterion) {
    let f = fix();
    let env = MemEnv::new(&f.core.circuit, DEFAULT_RAM_BYTES, &f.program);
    let golden = prepare_golden(&f.core.circuit, &f.topo, &env, 100_000, 6);
    let edges: Vec<EdgeId> = f
        .topo
        .structure_edges(&f.core.circuit, "alu")
        .unwrap()
        .into_iter()
        .take(16)
        .collect();
    let cycle = golden.sampled_cycles[2];
    // Ablation: a small delay exercises only the static pre-filter; a large
    // one runs the full two-step pipeline (event sim + GroupACE replay).
    for (label, frac) in [("d10", 0.1), ("d90", 0.9)] {
        let extra = (f.timing.clock_period() as f64 * frac) as u64;
        c.bench_function(&format!("inject_16_alu_edges_{label}"), |b| {
            b.iter_batched(
                || Injector::new(&f.core.circuit, &f.topo, &f.timing, &golden, 500),
                |mut inj| {
                    for &e in &edges {
                        let _ = inj.inject(cycle, e, extra);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_early_exit_ablation(c: &mut Criterion) {
    // Ablation: the convergence early-exit in the GroupACE replay. With it
    // disabled every replay runs the whole remaining program; results are
    // identical, only the cost changes.
    let f = fix();
    let env = MemEnv::new(&f.core.circuit, DEFAULT_RAM_BYTES, &f.program);
    let golden = prepare_golden(&f.core.circuit, &f.topo, &env, 100_000, 6);
    let cycle = golden.sampled_cycles[2];
    let dffs: Vec<_> = f
        .core
        .circuit
        .structure("lsu")
        .unwrap()
        .dffs()
        .iter()
        .copied()
        .take(8)
        .collect();
    for (label, early) in [("early_exit_on", true), ("early_exit_off", false)] {
        c.bench_function(&format!("groupace_8_strikes_{label}"), |b| {
            b.iter_batched(
                || {
                    let mut inj = Injector::new(&f.core.circuit, &f.topo, &f.timing, &golden, 500);
                    inj.set_early_exit(early);
                    inj
                },
                |mut inj| {
                    for &d in &dffs {
                        let _ = inj.bit_ace(cycle, d);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_incremental_ablation(c: &mut Criterion) {
    // Ablation: the incremental divergence-cone replay vs the exact
    // full-replay baseline. Results are bit-for-bit identical; only the
    // gates evaluated per replay cycle change.
    let f = fix();
    let env = MemEnv::new(&f.core.circuit, DEFAULT_RAM_BYTES, &f.program);
    let golden = prepare_golden(&f.core.circuit, &f.topo, &env, 100_000, 6);
    let cycle = golden.sampled_cycles[2];
    let dffs: Vec<_> = f
        .core
        .circuit
        .structure("lsu")
        .unwrap()
        .dffs()
        .iter()
        .copied()
        .take(8)
        .collect();
    for (label, incremental) in [("incremental", true), ("full_replay", false)] {
        c.bench_function(&format!("groupace_8_strikes_{label}"), |b| {
            b.iter_batched(
                || {
                    let mut inj = Injector::new(&f.core.circuit, &f.topo, &f.timing, &golden, 500);
                    inj.set_incremental(incremental);
                    inj
                },
                |mut inj| {
                    for &d in &dffs {
                        let _ = inj.bit_ace(cycle, d);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
}

/// The 512 spatial double-strike sets the wide-lane batch ablation runs:
/// every pair drawn (in order) from the first 64 register-file bits. The
/// pair cones overlap heavily — the shape where lane-packing pays, and the
/// shape [`delayavf::spatial_double_strike_campaign`] issues.
fn pair_strike_sets(f: &Fix) -> Vec<Vec<delayavf_netlist::DffId>> {
    let dffs: Vec<_> = f
        .core
        .circuit
        .structure("regfile")
        .unwrap()
        .dffs()
        .iter()
        .copied()
        .take(64)
        .collect();
    let mut sets = Vec::with_capacity(512);
    'outer: for i in 0..dffs.len() {
        for j in (i + 1)..dffs.len() {
            sets.push(vec![dffs[i], dffs[j]]);
            if sets.len() == 512 {
                break 'outer;
            }
        }
    }
    sets
}

fn bench_batch_ablation(c: &mut Criterion) {
    // Ablation: the bit-parallel batch replay vs the scalar incremental
    // engine, across the `u64`, 256- and 512-lane carriers. `lanes = 1`
    // disables batching entirely; results are identical, only the wall
    // clock changes. Collapse is off so the measurement isolates the
    // replay engine rather than the semi-formal discharge.
    let f = fix();
    let env = MemEnv::new(&f.core.circuit, DEFAULT_RAM_BYTES, &f.program);
    let golden = prepare_golden(&f.core.circuit, &f.topo, &env, 100_000, 6);
    let cycle = golden.sampled_cycles[2];
    let dffs: Vec<_> = f
        .core
        .circuit
        .structure("regfile")
        .unwrap()
        .dffs()
        .iter()
        .copied()
        .take(64)
        .collect();
    assert_eq!(dffs.len(), 64, "one full u64 batch of strike scenarios");
    for (label, lanes) in [("lanes1", 1usize), ("lanes64", 64)] {
        c.bench_function(&format!("savf_64_strikes_{label}"), |b| {
            b.iter_batched(
                || {
                    let mut inj = Injector::new(&f.core.circuit, &f.topo, &f.timing, &golden, 500);
                    inj.set_lanes(lanes);
                    inj.set_collapse(false);
                    inj
                },
                |mut inj| {
                    inj.prefill_failures(cycle, dffs.iter().map(|&d| vec![d]));
                    for &d in &dffs {
                        let _ = inj.bit_ace(cycle, d);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    // The wide-carrier axis needs more scenarios per boundary than state
    // bits: 512 spatial double strikes fill one 512-lane word.
    let sets = pair_strike_sets(&f);
    for (label, lanes) in [("lanes1", 1usize), ("lanes64", 64), ("lanes512", 512)] {
        c.bench_function(&format!("savf_512_pair_strikes_{label}"), |b| {
            b.iter_batched(
                || {
                    let mut inj = Injector::new(&f.core.circuit, &f.topo, &f.timing, &golden, 500);
                    inj.set_lanes(lanes);
                    inj.set_collapse(false);
                    inj
                },
                |mut inj| {
                    inj.prefill_failures(cycle, sets.iter().cloned());
                    for s in &sets {
                        let _ = inj.group_ace(cycle, s);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    emit_batch_snapshot(&f, &golden, &dffs, &sets);
}

/// Hand-timed lane-width ablation snapshot, written to `BENCH_batch.json`
/// at the workspace root so the perf trajectory of the batch engine is
/// tracked in-tree (the vendored criterion stand-in does not persist
/// measurements). The headline entry is the 512-pair-strike shape across
/// the 1/64/256/512 lane axis; the original 64-single-strike shape stays
/// as a secondary entry.
fn emit_batch_snapshot(
    f: &Fix,
    golden: &delayavf::GoldenRun<MemEnv>,
    dffs: &[delayavf_netlist::DffId],
    sets: &[Vec<delayavf_netlist::DffId>],
) {
    use std::time::Instant;
    let widths = [1usize, 64, 256, 512];
    let mut best = [f64::INFINITY; 4];
    let mut util = 0.0;
    for (slot, lanes) in widths.into_iter().enumerate() {
        for _rep in 0..3 {
            let mut inj = Injector::new(&f.core.circuit, &f.topo, &f.timing, golden, 500);
            inj.set_lanes(lanes);
            inj.set_collapse(false);
            let t = Instant::now();
            for &cycle in &golden.sampled_cycles {
                inj.prefill_failures(cycle, sets.iter().cloned());
                for s in sets {
                    let _ = inj.group_ace(cycle, s);
                }
            }
            let ms = t.elapsed().as_secs_f64() * 1e3;
            best[slot] = best[slot].min(ms);
            if lanes == 512 {
                util = inj.stats.lane_utilization();
            }
        }
    }
    let mut single = [f64::INFINITY; 2];
    for (slot, lanes) in [1usize, 64].into_iter().enumerate() {
        for _rep in 0..3 {
            let mut inj = Injector::new(&f.core.circuit, &f.topo, &f.timing, golden, 500);
            inj.set_lanes(lanes);
            inj.set_collapse(false);
            let t = Instant::now();
            for &cycle in &golden.sampled_cycles {
                inj.prefill_failures(cycle, dffs.iter().map(|&d| vec![d]));
                for &d in dffs {
                    let _ = inj.bit_ace(cycle, d);
                }
            }
            let ms = t.elapsed().as_secs_f64() * 1e3;
            single[slot] = single[slot].min(ms);
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"savf_512_pair_strikes_over_{}_cycles\",\n  \"lanes1_ms\": {:.3},\n  \"lanes64_ms\": {:.3},\n  \"lanes256_ms\": {:.3},\n  \"lanes512_ms\": {:.3},\n  \"speedup64\": {:.2},\n  \"speedup256\": {:.2},\n  \"speedup512\": {:.2},\n  \"speedup\": {:.2},\n  \"lane_utilization\": {:.3},\n  \"single_strike_lanes1_ms\": {:.3},\n  \"single_strike_lanes64_ms\": {:.3},\n  \"single_strike_speedup\": {:.2}\n}}\n",
        golden.sampled_cycles.len(),
        best[0],
        best[1],
        best[2],
        best[3],
        best[0] / best[1],
        best[0] / best[2],
        best[0] / best[3],
        best[0] / best[3],
        util,
        single[0],
        single[1],
        single[0] / single[1],
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    std::fs::write(path, json).expect("write BENCH_batch.json");
}

fn bench_delta_timing_ablation(c: &mut Criterion) {
    // Ablation: the incremental timing-aware engine (shared golden-waveform
    // cache + fault-cone delta events) vs the full event simulator on a
    // timing-step-bound workload: step 1 only, many edges per cycle, a delay
    // large enough that nothing is statically filtered. Results are
    // bit-for-bit identical; only the wall clock changes.
    let f = fix();
    let env = MemEnv::new(&f.core.circuit, DEFAULT_RAM_BYTES, &f.program);
    let golden = prepare_golden(&f.core.circuit, &f.topo, &env, 100_000, 6);
    let cycle = golden.sampled_cycles[2];
    let edges: Vec<EdgeId> = f
        .topo
        .structure_edges(&f.core.circuit, "alu")
        .unwrap()
        .into_iter()
        .take(32)
        .collect();
    let extra = f.timing.clock_period() * 9 / 10;
    for (label, delta) in [("delta", true), ("full_event", false)] {
        c.bench_function(&format!("step1_32_alu_edges_{label}"), |b| {
            b.iter_batched(
                || {
                    let mut inj = Injector::new(&f.core.circuit, &f.topo, &f.timing, &golden, 500);
                    inj.set_delta_timing(delta);
                    inj
                },
                |mut inj| {
                    for &e in &edges {
                        let _ = inj.dynamically_reachable(cycle, e, extra);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    emit_timing_snapshot(&f, &golden, &edges, extra);
}

fn bench_timing_batch_ablation(c: &mut Criterion) {
    // Ablation: the lane-packed timing batch (step 1 for a whole cycle's
    // worth of edges in one packed propagation) vs the scalar incremental
    // engine edge by edge. `timing_lanes = 1` routes the batched entry
    // point straight to the scalar engine; results are identical, only the
    // wall clock changes.
    let f = fix();
    let env = MemEnv::new(&f.core.circuit, DEFAULT_RAM_BYTES, &f.program);
    let golden = prepare_golden(&f.core.circuit, &f.topo, &env, 100_000, 6);
    let cycle = golden.sampled_cycles[2];
    let extra = f.timing.clock_period() * 9 / 10;
    for structure in ["alu", "decoder", "lsu"] {
        let pairs: Vec<(EdgeId, Picos)> = f
            .topo
            .structure_edges(&f.core.circuit, structure)
            .unwrap()
            .into_iter()
            .take(64)
            .map(|e| (e, extra))
            .collect();
        for (label, timing_lanes) in [("timing_lanes1", 1usize), ("timing_lanes64", 64)] {
            // Warm: the setup call builds and caches the cycle's golden
            // waveform, so the measurement isolates the packed propagation
            // — the steady state inside a sweep, where one build is shared
            // by every edge injected at the cycle.
            c.bench_function(
                &format!("step1_batch_64_{structure}_edges_{label}_warm"),
                |b| {
                    b.iter_batched(
                        || {
                            let mut inj =
                                Injector::new(&f.core.circuit, &f.topo, &f.timing, &golden, 500);
                            inj.set_timing_lanes(timing_lanes);
                            let _ = inj.dynamically_reachable_batch(cycle, &pairs);
                            inj
                        },
                        |mut inj| {
                            let _ = inj.dynamically_reachable_batch(cycle, &pairs);
                        },
                        BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    // The wide-carrier axis: 512 distinct ALU edges in one batch call,
    // carried by one 512-lane word (`timing_lanes512`) or eight u64 chunks
    // (`timing_lanes64`).
    let wide_pairs: Vec<(EdgeId, Picos)> = f
        .topo
        .structure_edges(&f.core.circuit, "alu")
        .unwrap()
        .into_iter()
        .take(512)
        .map(|e| (e, extra))
        .collect();
    for (label, timing_lanes) in [("timing_lanes64", 64usize), ("timing_lanes512", 512)] {
        c.bench_function(&format!("step1_batch_512_alu_edges_{label}_warm"), |b| {
            b.iter_batched(
                || {
                    let mut inj = Injector::new(&f.core.circuit, &f.topo, &f.timing, &golden, 500);
                    inj.set_timing_lanes(timing_lanes);
                    let _ = inj.dynamically_reachable_batch(cycle, &wide_pairs);
                    inj
                },
                |mut inj| {
                    let _ = inj.dynamically_reachable_batch(cycle, &wide_pairs);
                },
                BatchSize::SmallInput,
            )
        });
    }
}

/// Hand-timed snapshot of the timing step over every sampled cycle —
/// full-event vs scalar delta vs 64-lane timing batch — written to
/// `BENCH_timing.json` at the workspace root so the perf trajectory of the
/// timing-aware engines is tracked in-tree (the vendored criterion stand-in
/// does not persist measurements).
fn emit_timing_snapshot(
    f: &Fix,
    golden: &delayavf::GoldenRun<MemEnv>,
    edges: &[EdgeId],
    extra: u64,
) {
    use std::time::Instant;
    let mut best = [f64::INFINITY; 3];
    let mut builds = 0u64;
    let mut util = 0.0;
    let pairs: Vec<(EdgeId, Picos)> = edges.iter().map(|&e| (e, extra)).collect();
    // Slot 0: scalar delta. Slot 1: full event. Slot 2: 64-lane batch.
    for (slot, delta) in [true, false].into_iter().enumerate() {
        for _rep in 0..3 {
            let mut inj = Injector::new(&f.core.circuit, &f.topo, &f.timing, golden, 500);
            inj.set_delta_timing(delta);
            let t = Instant::now();
            for &cycle in &golden.sampled_cycles {
                if cycle < 1 || cycle + 1 >= golden.trace.num_cycles() {
                    continue;
                }
                for &e in edges {
                    let _ = inj.dynamically_reachable(cycle, e, extra);
                }
            }
            let ms = t.elapsed().as_secs_f64() * 1e3;
            best[slot] = best[slot].min(ms);
            if delta {
                builds = inj.stats.golden_waveform_builds;
            }
        }
    }
    for _rep in 0..3 {
        let mut inj = Injector::new(&f.core.circuit, &f.topo, &f.timing, golden, 500);
        let t = Instant::now();
        for &cycle in &golden.sampled_cycles {
            if cycle < 1 || cycle + 1 >= golden.trace.num_cycles() {
                continue;
            }
            let _ = inj.dynamically_reachable_batch(cycle, &pairs);
        }
        let ms = t.elapsed().as_secs_f64() * 1e3;
        best[2] = best[2].min(ms);
        util = inj.stats.timing_lane_utilization();
    }
    // Warm steady state at one cycle, per structure: the golden waveform
    // is cached, so the scalar-vs-batch comparison isolates the
    // propagation itself (the build cost above is shared by both paths and
    // amortizes over every edge injected at a cycle). 64 edges fill one
    // u64 batch — the shape the delay sweep issues.
    let cycle = golden.sampled_cycles[2];
    let mut warm_json = String::new();
    for structure in ["alu", "decoder", "lsu"] {
        let spairs: Vec<(EdgeId, Picos)> = f
            .topo
            .structure_edges(&f.core.circuit, structure)
            .unwrap()
            .into_iter()
            .take(64)
            .map(|e| (e, extra))
            .collect();
        let mut warm = [f64::INFINITY; 2];
        {
            let mut inj = Injector::new(&f.core.circuit, &f.topo, &f.timing, golden, 500);
            for &(e, x) in &spairs {
                let _ = inj.dynamically_reachable(cycle, e, x);
            }
            for _rep in 0..5 {
                let t = Instant::now();
                for &(e, x) in &spairs {
                    let _ = inj.dynamically_reachable(cycle, e, x);
                }
                warm[0] = warm[0].min(t.elapsed().as_secs_f64() * 1e3);
            }
        }
        {
            let mut inj = Injector::new(&f.core.circuit, &f.topo, &f.timing, golden, 500);
            let _ = inj.dynamically_reachable_batch(cycle, &spairs);
            for _rep in 0..5 {
                let t = Instant::now();
                let _ = inj.dynamically_reachable_batch(cycle, &spairs);
                warm[1] = warm[1].min(t.elapsed().as_secs_f64() * 1e3);
            }
        }
        warm_json.push_str(&format!(
            ",\n  \"warm_{structure}64_scalar_ms\": {:.3},\n  \"warm_{structure}64_batch_ms\": {:.3},\n  \"warm_{structure}64_batch_speedup\": {:.2}",
            warm[0],
            warm[1],
            warm[0] / warm[1]
        ));
    }
    // Wide-carrier warm ablation: N distinct ALU edges per batch call at
    // every timing-lane width that fits them. The scalar column replays
    // the same N edges one at a time; the speedup key uses the full-width
    // carrier (timing_lanes = N), the honest wide-word number.
    for n in [256usize, 512] {
        let spairs: Vec<(EdgeId, Picos)> = f
            .topo
            .structure_edges(&f.core.circuit, "alu")
            .unwrap()
            .into_iter()
            .take(n)
            .map(|e| (e, extra))
            .collect();
        assert_eq!(spairs.len(), n, "alu has at least {n} timed edges");
        let mut scalar = f64::INFINITY;
        {
            let mut inj = Injector::new(&f.core.circuit, &f.topo, &f.timing, golden, 500);
            for &(e, x) in &spairs {
                let _ = inj.dynamically_reachable(cycle, e, x);
            }
            for _rep in 0..5 {
                let t = Instant::now();
                for &(e, x) in &spairs {
                    let _ = inj.dynamically_reachable(cycle, e, x);
                }
                scalar = scalar.min(t.elapsed().as_secs_f64() * 1e3);
            }
        }
        warm_json.push_str(&format!(",\n  \"warm_alu{n}_scalar_ms\": {scalar:.3}"));
        let mut full_width = f64::INFINITY;
        for tl in [64usize, 256, 512] {
            if tl > n {
                continue;
            }
            let mut batch = f64::INFINITY;
            let mut inj = Injector::new(&f.core.circuit, &f.topo, &f.timing, golden, 500);
            inj.set_timing_lanes(tl);
            let _ = inj.dynamically_reachable_batch(cycle, &spairs);
            for _rep in 0..5 {
                let t = Instant::now();
                let _ = inj.dynamically_reachable_batch(cycle, &spairs);
                batch = batch.min(t.elapsed().as_secs_f64() * 1e3);
            }
            warm_json.push_str(&format!(",\n  \"warm_alu{n}_batch_tl{tl}_ms\": {batch:.3}"));
            if tl == n {
                full_width = batch;
            }
        }
        warm_json.push_str(&format!(
            ",\n  \"warm_alu{n}_batch_speedup\": {:.2}",
            scalar / full_width
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"step1_{}_alu_edges_over_{}_cycles\",\n  \"delta_ms\": {:.3},\n  \"full_event_ms\": {:.3},\n  \"speedup\": {:.2},\n  \"golden_waveform_builds\": {},\n  \"batch_ms\": {:.3},\n  \"batch_speedup_vs_delta\": {:.2},\n  \"timing_lane_utilization\": {:.3}{}\n}}\n",
        edges.len(),
        golden.sampled_cycles.len(),
        best[0],
        best[1],
        best[1] / best[0],
        builds,
        best[2],
        best[0] / best[2],
        util,
        warm_json
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_timing.json");
    std::fs::write(path, json).expect("write BENCH_timing.json");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build_and_sta, bench_cycle_sim, bench_event_sim, bench_static_reach,
        bench_injection, bench_early_exit_ablation, bench_incremental_ablation,
        bench_batch_ablation, bench_delta_timing_ablation, bench_timing_batch_ablation
}
criterion_main!(benches);
