//! Shared harness: cores, timing models, golden runs and sampling options.

use std::collections::HashMap;
use std::sync::Arc;

use delayavf::{prepare_golden_seeded, sample_edges, GoldenRun};
use delayavf_netlist::{DffId, EdgeId, Topology};
use delayavf_rvcore::{Core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_timing::{TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

/// Sampling and scale options for an experiment run.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Number of stratified-random injection cycles per benchmark.
    pub cycles: usize,
    /// Maximum number of injected edges per structure.
    pub edge_limit: usize,
    /// Maximum number of struck flip-flops per structure (sAVF).
    pub dff_limit: usize,
    /// Sampling seed.
    pub seed: u64,
    /// Workload scale.
    pub scale: Scale,
    /// DUE budget: extra cycles past the golden length before declaring a
    /// detected unrecoverable error.
    pub due_slack: u64,
    /// Campaign worker threads (`0` = one per available core). Results are
    /// identical for every value — see the determinism tests.
    pub threads: usize,
    /// Use the incremental divergence-cone replay engine (the default).
    /// Results are bit-for-bit identical either way; `false` runs the exact
    /// full-replay baseline (the `--no-incremental` escape hatch).
    pub incremental: bool,
    /// Use the incremental timing-aware engine for step 1 (the default).
    /// Results are bit-for-bit identical either way; `false` runs the exact
    /// full event-simulation baseline (the `--no-delta-timing` escape
    /// hatch).
    pub delta_timing: bool,
    /// Bit-parallel replay lanes per batch (1–64). AVF numbers are identical
    /// for every value; `1` runs the exact scalar baseline (the `--lanes 1`
    /// escape hatch).
    pub lanes: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            cycles: 24,
            edge_limit: 240,
            dff_limit: 72,
            seed: 7,
            scale: Scale::Paper,
            due_slack: 2_000,
            threads: 0,
            incremental: true,
            delta_timing: true,
            lanes: 64,
        }
    }
}

impl Opts {
    /// The strike-campaign options corresponding to these experiment
    /// options.
    pub fn replay_options(&self) -> delayavf::ReplayOptions {
        delayavf::ReplayOptions::new(self.due_slack, self.threads)
            .with_incremental(self.incremental)
            .with_delta_timing(self.delta_timing)
            .with_lanes(self.lanes)
    }
}

impl Opts {
    /// A much smaller configuration for smoke tests and Criterion benches.
    pub fn quick() -> Self {
        Opts {
            cycles: 6,
            edge_limit: 40,
            dff_limit: 16,
            scale: Scale::Tiny,
            ..Opts::default()
        }
    }
}

/// Which core variant a structure lives on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StructureSel {
    /// A structure of the baseline core.
    Plain(&'static str),
    /// A structure of the ECC-register-file core.
    Ecc(&'static str),
    /// A structure of the Kogge–Stone-adder core.
    Fast(&'static str),
}

impl StructureSel {
    /// Display label (matches the paper's row names).
    pub fn label(self) -> String {
        match self {
            StructureSel::Plain(s) => s.to_owned(),
            StructureSel::Ecc(s) => format!("{s} (ECC)"),
            StructureSel::Fast(s) => format!("{s} (fast adder)"),
        }
    }

    /// The underlying structure name.
    pub fn name(self) -> &'static str {
        match self {
            StructureSel::Plain(s) | StructureSel::Ecc(s) | StructureSel::Fast(s) => s,
        }
    }
}

/// One analyzed core variant: circuit, topology, timing.
pub struct Variant {
    /// The built core.
    pub core: Core,
    /// Its topology.
    pub topo: Topology,
    /// Its timing model.
    pub timing: TimingModel,
    goldens: HashMap<(Kernel, u64), Arc<GoldenRun<MemEnv>>>,
}

impl Variant {
    fn new(config: CoreConfig) -> Self {
        let core = delayavf_rvcore::build_core(config);
        let topo = Topology::new(&core.circuit);
        let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
        Variant {
            core,
            topo,
            timing,
            goldens: HashMap::new(),
        }
    }

    /// The golden run for a kernel (recorded once, then cached).
    pub fn golden(&mut self, kernel: Kernel, opts: &Opts) -> Arc<GoldenRun<MemEnv>> {
        let key = (kernel, opts.seed ^ ((opts.cycles as u64) << 32));
        if !self.goldens.contains_key(&key) {
            let w = kernel.build(opts.scale);
            let p = w.assemble().expect("workload assembles");
            let env = MemEnv::new(&self.core.circuit, DEFAULT_RAM_BYTES, &p);
            let golden = prepare_golden_seeded(
                &self.core.circuit,
                &self.topo,
                &env,
                w.max_cycles,
                opts.cycles,
                opts.seed,
            );
            assert!(
                golden.trace.halted(),
                "{kernel} must halt on the gate-level core"
            );
            self.goldens.insert(key, Arc::new(golden));
        }
        Arc::clone(&self.goldens[&key])
    }

    /// Sampled injectable edges of a structure.
    pub fn edges(&self, structure: &str, opts: &Opts) -> Vec<EdgeId> {
        let all = self
            .topo
            .structure_edges(&self.core.circuit, structure)
            .expect("structure exists");
        sample_edges(&all, opts.edge_limit, opts.seed)
    }

    /// Sampled flip-flops of a structure (for sAVF strikes).
    pub fn dffs(&self, structure: &str, opts: &Opts) -> Vec<DffId> {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let s = self
            .core
            .circuit
            .structure(structure)
            .expect("structure exists");
        let all = s.dffs();
        if all.len() <= opts.dff_limit {
            return all.to_vec();
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
        let mut picked: Vec<DffId> = all
            .choose_multiple(&mut rng, opts.dff_limit)
            .copied()
            .collect();
        picked.sort_unstable();
        picked
    }
}

/// Both core variants (plain and ECC register file), built once.
pub struct Harness {
    /// Baseline core.
    pub plain: Variant,
    /// Core with the ECC-protected register file.
    pub ecc: Variant,
    /// Core with the Kogge–Stone ALU adder.
    pub fast: Variant,
}

impl Harness {
    /// Builds both cores and their timing models.
    pub fn build() -> Self {
        Harness {
            plain: Variant::new(CoreConfig::default()),
            ecc: Variant::new(CoreConfig {
                ecc_regfile: true,
                ..CoreConfig::default()
            }),
            fast: Variant::new(CoreConfig {
                fast_adder: true,
                ..CoreConfig::default()
            }),
        }
    }

    /// Selects the variant a structure row lives on.
    pub fn variant_mut(&mut self, sel: StructureSel) -> &mut Variant {
        match sel {
            StructureSel::Plain(_) => &mut self.plain,
            StructureSel::Ecc(_) => &mut self.ecc,
            StructureSel::Fast(_) => &mut self.fast,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_selectors_label_and_name() {
        assert_eq!(StructureSel::Plain("alu").label(), "alu");
        assert_eq!(StructureSel::Ecc("regfile").label(), "regfile (ECC)");
        assert_eq!(StructureSel::Fast("alu").label(), "alu (fast adder)");
        assert_eq!(StructureSel::Ecc("regfile").name(), "regfile");
    }

    #[test]
    fn harness_builds_three_distinct_variants() {
        let mut h = Harness::build();
        let plain_dffs = h.plain.core.circuit.num_dffs();
        let ecc_dffs = h.ecc.core.circuit.num_dffs();
        assert!(ecc_dffs > plain_dffs, "ECC storage is wider");
        assert!(
            h.fast.timing.clock_period() < h.plain.timing.clock_period(),
            "the prefix adder shortens the critical path"
        );
        // variant_mut routes by selector kind.
        let e = h.variant_mut(StructureSel::Ecc("regfile"));
        assert_eq!(e.core.circuit.num_dffs(), ecc_dffs);
    }

    #[test]
    fn edge_and_dff_sampling_respect_limits() {
        let h = Harness::build();
        let opts = Opts {
            edge_limit: 10,
            dff_limit: 5,
            ..Opts::quick()
        };
        assert_eq!(h.plain.edges("alu", &opts).len(), 10);
        assert_eq!(h.plain.dffs("regfile", &opts).len(), 5);
        // Limits above the population return everything.
        let all = Opts {
            dff_limit: usize::MAX,
            ..opts
        };
        assert_eq!(h.plain.dffs("control", &all).len(), 6);
    }

    #[test]
    fn goldens_are_cached_per_kernel_and_sampling() {
        let mut h = Harness::build();
        let opts = Opts::quick();
        let a = h.plain.golden(Kernel::Libfibcall, &opts);
        let b = h.plain.golden(Kernel::Libfibcall, &opts);
        assert!(Arc::ptr_eq(&a, &b), "second lookup hits the cache");
        let other = h.plain.golden(
            Kernel::Libfibcall,
            &Opts {
                seed: opts.seed + 1,
                ..opts
            },
        );
        assert!(!Arc::ptr_eq(&a, &other), "different seed, different run");
    }
}
