//! Shared harness: cores, timing models, golden runs and sampling options.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::path::PathBuf;
use std::sync::Arc;

use delayavf::{
    delay_avf_campaign_observed, prepare_golden_seeded, sample_edges, savf_campaign_observed,
    CampaignConfig, CheckpointSpec, DelayAvfResult, GoldenRun, InjectorStats, JsonlTelemetry,
    ReplayOptions, RunContext, SavfResult, NULL_TELEMETRY,
};
use delayavf_netlist::{Circuit, DffId, EdgeId, Topology};
use delayavf_rvcore::{Core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_sim::{Environment, MAX_LANES, MAX_TIMING_LANES};
use delayavf_timing::{TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

/// Sampling and scale options for an experiment run.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Number of stratified-random injection cycles per benchmark.
    pub cycles: usize,
    /// Maximum number of injected edges per structure.
    pub edge_limit: usize,
    /// Maximum number of struck flip-flops per structure (sAVF).
    pub dff_limit: usize,
    /// Sampling seed.
    pub seed: u64,
    /// Workload scale.
    pub scale: Scale,
    /// DUE budget: extra cycles past the golden length before declaring a
    /// detected unrecoverable error.
    pub due_slack: u64,
    /// Campaign worker threads (`0` = one per available core). Results are
    /// identical for every value — see the determinism tests.
    pub threads: usize,
    /// Use the incremental divergence-cone replay engine (the default).
    /// Results are bit-for-bit identical either way; `false` runs the exact
    /// full-replay baseline (the `--no-incremental` escape hatch).
    pub incremental: bool,
    /// Use the incremental timing-aware engine for step 1 (the default).
    /// Results are bit-for-bit identical either way; `false` runs the exact
    /// full event-simulation baseline (the `--no-delta-timing` escape
    /// hatch).
    pub delta_timing: bool,
    /// Bit-parallel replay lanes per batch (1–512; widths above 64 ride
    /// the 256/512-bit wide-word carriers). AVF numbers are identical for
    /// every value; `1` runs the exact scalar baseline (the `--lanes 1`
    /// escape hatch).
    pub lanes: usize,
    /// Lane-packed timing-aware replay lanes per batch (1–512; widths
    /// above 64 ride the 256/512-bit wide-word carriers). AVF numbers are
    /// identical for every value; `1` runs the exact scalar baseline (the
    /// `--timing-lanes 1` escape hatch).
    pub timing_lanes: usize,
    /// Use the pre-simulation collapsing layer — injection-site equivalence
    /// classes, the quiet-source certificate and the semi-formal masking
    /// discharge (the default). AVF numbers are bit-for-bit identical either
    /// way; `false` runs the exact per-site baseline (the `--no-collapse`
    /// escape hatch).
    pub collapse: bool,
    /// Directory for crash-safe campaign checkpoints (`--checkpoint-dir`).
    /// `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Flush the checkpoint after every this many completed work units
    /// (`--checkpoint-every`, default 1).
    pub checkpoint_every: usize,
    /// Resume from existing checkpoints instead of starting fresh
    /// (`--resume`). Missing checkpoint files fall back to a fresh start;
    /// mismatched ones are a hard error.
    pub resume: bool,
    /// Append structured JSONL telemetry to this file (`--telemetry`).
    /// `None` disables the stream at zero cost.
    pub telemetry: Option<PathBuf>,
    /// Adaptive stratified sampling: target 95% CI half-width
    /// (`--ci-target`). `None` (the default) runs the exhaustive uniform
    /// campaigns and reproduces their reports byte-for-byte.
    pub ci_target: Option<f64>,
    /// Stratification buckets per axis under `--ci-target`
    /// (`--strata`, default 4).
    pub strata: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            cycles: 24,
            edge_limit: 240,
            dff_limit: 72,
            seed: 7,
            scale: Scale::Paper,
            due_slack: 2_000,
            threads: 0,
            incremental: true,
            delta_timing: true,
            lanes: MAX_LANES,
            timing_lanes: MAX_TIMING_LANES,
            collapse: true,
            checkpoint_dir: None,
            checkpoint_every: 1,
            resume: false,
            telemetry: None,
            ci_target: None,
            strata: delayavf::DEFAULT_STRATA,
        }
    }
}

impl Opts {
    /// The strike-campaign options corresponding to these experiment
    /// options.
    pub fn replay_options(&self) -> delayavf::ReplayOptions {
        delayavf::ReplayOptions::new(self.due_slack, self.threads)
            .with_incremental(self.incremental)
            .with_delta_timing(self.delta_timing)
            .with_lanes(self.lanes)
            .with_timing_lanes(self.timing_lanes)
            .with_collapse(self.collapse)
            .with_ci_target(self.ci_target)
            .with_strata(self.strata)
            .with_sample_seed(self.seed)
    }
}

impl Opts {
    /// A much smaller configuration for smoke tests and Criterion benches.
    pub fn quick() -> Self {
        Opts {
            cycles: 6,
            edge_limit: 40,
            dff_limit: 16,
            scale: Scale::Tiny,
            ..Opts::default()
        }
    }
}

/// Runtime observability handle shared by every campaign of a run: one
/// JSONL telemetry stream (so timestamps stay monotone across experiments)
/// plus the checkpoint policy. Cheap to clone.
#[derive(Clone, Default)]
pub struct Observability {
    /// The shared telemetry sink, if `--telemetry` was given.
    pub telemetry: Option<Arc<JsonlTelemetry<File>>>,
    /// Checkpoint directory, if `--checkpoint-dir` was given.
    pub checkpoint_dir: Option<PathBuf>,
    /// Units between checkpoint flushes.
    pub checkpoint_every: usize,
    /// Resume from existing checkpoint files.
    pub resume: bool,
}

impl std::fmt::Debug for Observability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observability")
            .field("telemetry", &self.telemetry.is_some())
            .field("checkpoint_dir", &self.checkpoint_dir)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("resume", &self.resume)
            .finish()
    }
}

impl Observability {
    /// Builds the run-wide handle from the parsed options: opens (appends
    /// to) the telemetry file and creates the checkpoint directory.
    ///
    /// # Errors
    ///
    /// Returns a message if the telemetry file or checkpoint directory
    /// cannot be created.
    pub fn from_opts(opts: &Opts) -> Result<Self, String> {
        Observability::create(
            opts.telemetry.as_deref(),
            opts.checkpoint_dir.as_deref(),
            opts.checkpoint_every,
            opts.resume,
        )
    }

    /// Like [`Observability::from_opts`], from bare paths (used by the
    /// configuration-file runner).
    ///
    /// # Errors
    ///
    /// Returns a message if the telemetry file or checkpoint directory
    /// cannot be created.
    pub fn create(
        telemetry: Option<&std::path::Path>,
        checkpoint_dir: Option<&std::path::Path>,
        checkpoint_every: usize,
        resume: bool,
    ) -> Result<Self, String> {
        let telemetry = match telemetry {
            Some(path) => {
                let file = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| format!("cannot open telemetry file `{}`: {e}", path.display()))?;
                Some(Arc::new(JsonlTelemetry::new(file)))
            }
            None => None,
        };
        if let Some(dir) = checkpoint_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create checkpoint dir `{}`: {e}", dir.display()))?;
        }
        Ok(Observability {
            telemetry,
            checkpoint_dir: checkpoint_dir.map(Into::into),
            checkpoint_every,
            resume,
        })
    }

    /// The checkpoint spec for a campaign label (`None` when checkpointing
    /// is off). The label is slugged into a file name; distinct campaigns
    /// use distinct labels, and the checkpoint fingerprint catches any
    /// residual collision as a hard `checkpoint mismatch`.
    pub fn spec(&self, label: &str) -> Option<CheckpointSpec> {
        self.checkpoint_dir.as_ref().map(|dir| {
            CheckpointSpec::new(
                dir.join(format!("{}.ckpt", slug(label))),
                self.checkpoint_every,
                self.resume,
            )
        })
    }
}

/// File-name slug: lowercase alphanumerics, everything else collapsed to
/// single dashes.
fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') && !out.is_empty() {
            out.push('-');
        }
    }
    out.trim_end_matches('-').to_owned()
}

/// Runs a DelayAVF sweep through the observed entry point, dispatching on
/// whether telemetry is enabled (two monomorphizations — the disabled one
/// is exactly the pre-observability code path).
///
/// # Errors
///
/// Propagates checkpoint I/O and `checkpoint mismatch` errors.
#[allow(clippy::too_many_arguments)]
pub fn run_delay_campaign<E: Environment + Clone>(
    obs: &Observability,
    label: &str,
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    edges: &[EdgeId],
    config: &CampaignConfig,
) -> Result<(Vec<DelayAvfResult>, InjectorStats), String> {
    let spec = obs.spec(label);
    match &obs.telemetry {
        Some(sink) => delay_avf_campaign_observed(
            circuit,
            topo,
            timing,
            golden,
            edges,
            config,
            &RunContext::new(sink.as_ref(), spec),
        ),
        None => delay_avf_campaign_observed(
            circuit,
            topo,
            timing,
            golden,
            edges,
            config,
            &RunContext::new(&NULL_TELEMETRY, spec),
        ),
    }
}

/// Runs an sAVF strike campaign through the observed entry point; see
/// [`run_delay_campaign`].
///
/// # Errors
///
/// Propagates checkpoint I/O and `checkpoint mismatch` errors.
#[allow(clippy::too_many_arguments)]
pub fn run_savf_campaign<E: Environment + Clone>(
    obs: &Observability,
    label: &str,
    circuit: &Circuit,
    topo: &Topology,
    timing: &TimingModel,
    golden: &GoldenRun<E>,
    dffs: &[DffId],
    opts: ReplayOptions,
) -> Result<(SavfResult, InjectorStats), String> {
    let spec = obs.spec(label);
    match &obs.telemetry {
        Some(sink) => savf_campaign_observed(
            circuit,
            topo,
            timing,
            golden,
            dffs,
            opts,
            &RunContext::new(sink.as_ref(), spec),
        ),
        None => savf_campaign_observed(
            circuit,
            topo,
            timing,
            golden,
            dffs,
            opts,
            &RunContext::new(&NULL_TELEMETRY, spec),
        ),
    }
}

/// Which core variant a structure lives on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StructureSel {
    /// A structure of the baseline core.
    Plain(&'static str),
    /// A structure of the ECC-register-file core.
    Ecc(&'static str),
    /// A structure of the Kogge–Stone-adder core.
    Fast(&'static str),
}

impl StructureSel {
    /// Display label (matches the paper's row names).
    pub fn label(self) -> String {
        match self {
            StructureSel::Plain(s) => s.to_owned(),
            StructureSel::Ecc(s) => format!("{s} (ECC)"),
            StructureSel::Fast(s) => format!("{s} (fast adder)"),
        }
    }

    /// The underlying structure name.
    pub fn name(self) -> &'static str {
        match self {
            StructureSel::Plain(s) | StructureSel::Ecc(s) | StructureSel::Fast(s) => s,
        }
    }
}

/// One analyzed core variant: circuit, topology, timing.
pub struct Variant {
    /// The built core.
    pub core: Core,
    /// Its topology.
    pub topo: Topology,
    /// Its timing model.
    pub timing: TimingModel,
    goldens: HashMap<(Kernel, u64), Arc<GoldenRun<MemEnv>>>,
}

impl Variant {
    fn new(config: CoreConfig) -> Self {
        let core = delayavf_rvcore::build_core(config);
        let topo = Topology::new(&core.circuit);
        let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
        Variant {
            core,
            topo,
            timing,
            goldens: HashMap::new(),
        }
    }

    /// The golden run for a kernel (recorded once, then cached).
    pub fn golden(&mut self, kernel: Kernel, opts: &Opts) -> Arc<GoldenRun<MemEnv>> {
        let key = (kernel, opts.seed ^ ((opts.cycles as u64) << 32));
        if !self.goldens.contains_key(&key) {
            let w = kernel.build(opts.scale);
            let p = w.assemble().expect("workload assembles");
            let env = MemEnv::new(&self.core.circuit, DEFAULT_RAM_BYTES, &p);
            let golden = prepare_golden_seeded(
                &self.core.circuit,
                &self.topo,
                &env,
                w.max_cycles,
                opts.cycles,
                opts.seed,
            );
            assert!(
                golden.trace.halted(),
                "{kernel} must halt on the gate-level core"
            );
            self.goldens.insert(key, Arc::new(golden));
        }
        Arc::clone(&self.goldens[&key])
    }

    /// Sampled injectable edges of a structure.
    pub fn edges(&self, structure: &str, opts: &Opts) -> Vec<EdgeId> {
        let all = self
            .topo
            .structure_edges(&self.core.circuit, structure)
            .expect("structure exists");
        sample_edges(&all, opts.edge_limit, opts.seed)
    }

    /// Sampled flip-flops of a structure (for sAVF strikes).
    pub fn dffs(&self, structure: &str, opts: &Opts) -> Vec<DffId> {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let s = self
            .core
            .circuit
            .structure(structure)
            .expect("structure exists");
        let all = s.dffs();
        if all.len() <= opts.dff_limit {
            return all.to_vec();
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
        let mut picked: Vec<DffId> = all
            .choose_multiple(&mut rng, opts.dff_limit)
            .copied()
            .collect();
        picked.sort_unstable();
        picked
    }
}

/// Both core variants (plain and ECC register file), built once.
pub struct Harness {
    /// Baseline core.
    pub plain: Variant,
    /// Core with the ECC-protected register file.
    pub ecc: Variant,
    /// Core with the Kogge–Stone ALU adder.
    pub fast: Variant,
    /// Run-wide observability (telemetry stream + checkpoint policy);
    /// disabled by default.
    pub obs: Observability,
}

impl Harness {
    /// Builds both cores and their timing models.
    pub fn build() -> Self {
        Harness {
            plain: Variant::new(CoreConfig::default()),
            ecc: Variant::new(CoreConfig {
                ecc_regfile: true,
                ..CoreConfig::default()
            }),
            fast: Variant::new(CoreConfig {
                fast_adder: true,
                ..CoreConfig::default()
            }),
            obs: Observability::default(),
        }
    }

    /// Selects the variant a structure row lives on.
    pub fn variant_mut(&mut self, sel: StructureSel) -> &mut Variant {
        match sel {
            StructureSel::Plain(_) => &mut self.plain,
            StructureSel::Ecc(_) => &mut self.ecc,
            StructureSel::Fast(_) => &mut self.fast,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observability_specs_slug_labels() {
        let obs = Observability {
            checkpoint_dir: Some(PathBuf::from("/tmp/ckpt")),
            checkpoint_every: 4,
            resume: true,
            ..Observability::default()
        };
        let spec = obs.spec("davf-regfile (ECC)-md5").expect("dir configured");
        assert_eq!(
            spec.path,
            PathBuf::from("/tmp/ckpt/davf-regfile-ecc-md5.ckpt")
        );
        assert_eq!(spec.every, 4);
        assert!(spec.resume);
        assert!(Observability::default().spec("x").is_none());
        assert_eq!(slug("--A  b!!"), "a-b");
    }

    #[test]
    fn structure_selectors_label_and_name() {
        assert_eq!(StructureSel::Plain("alu").label(), "alu");
        assert_eq!(StructureSel::Ecc("regfile").label(), "regfile (ECC)");
        assert_eq!(StructureSel::Fast("alu").label(), "alu (fast adder)");
        assert_eq!(StructureSel::Ecc("regfile").name(), "regfile");
    }

    #[test]
    fn harness_builds_three_distinct_variants() {
        let mut h = Harness::build();
        let plain_dffs = h.plain.core.circuit.num_dffs();
        let ecc_dffs = h.ecc.core.circuit.num_dffs();
        assert!(ecc_dffs > plain_dffs, "ECC storage is wider");
        assert!(
            h.fast.timing.clock_period() < h.plain.timing.clock_period(),
            "the prefix adder shortens the critical path"
        );
        // variant_mut routes by selector kind.
        let e = h.variant_mut(StructureSel::Ecc("regfile"));
        assert_eq!(e.core.circuit.num_dffs(), ecc_dffs);
    }

    #[test]
    fn edge_and_dff_sampling_respect_limits() {
        let h = Harness::build();
        let opts = Opts {
            edge_limit: 10,
            dff_limit: 5,
            ..Opts::quick()
        };
        assert_eq!(h.plain.edges("alu", &opts).len(), 10);
        assert_eq!(h.plain.dffs("regfile", &opts).len(), 5);
        // Limits above the population return everything.
        let all = Opts {
            dff_limit: usize::MAX,
            ..opts
        };
        assert_eq!(h.plain.dffs("control", &all).len(), 6);
    }

    #[test]
    fn goldens_are_cached_per_kernel_and_sampling() {
        let mut h = Harness::build();
        let opts = Opts::quick();
        let a = h.plain.golden(Kernel::Libfibcall, &opts);
        let b = h.plain.golden(Kernel::Libfibcall, &opts);
        assert!(Arc::ptr_eq(&a, &b), "second lookup hits the cache");
        let other = h.plain.golden(
            Kernel::Libfibcall,
            &Opts {
                seed: opts.seed + 1,
                ..opts
            },
        );
        assert!(!Arc::ptr_eq(&a, &other), "different seed, different run");
    }
}
