//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Tables I–III, Figures 6–10, and the multi-bit error
//! statistics) on the gate-level core.
//!
//! Each `table_*`/`fig_*` function returns both structured data and a
//! rendered plain-text report; the `repro` binary is a thin CLI over them.
//! Sampling is configurable through [`Opts`] — the defaults are tuned to
//! finish in minutes on a single CPU while preserving the paper's
//! qualitative shapes. `EXPERIMENTS.md` records reference outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod experiments;
pub mod harness;

pub use config::ExperimentSpec;
pub use delayavf::{validate_ci_target, validate_strata};
pub use experiments::{
    fastadder, fig10, fig6, fig7, fig8, fig9, guardband, multibit, table1, table2, table3,
    variance, Experiment,
};
pub use harness::{
    run_delay_campaign, run_savf_campaign, Harness, Observability, Opts, StructureSel,
};
