//! Artifact-style configuration files.
//!
//! The paper's artifact drives each experiment through a configuration file
//! (`./run_all.sh configs/beeps/md5_alu.dict`). This module provides the
//! same workflow: a plain-text `key = value` format (no external parser
//! dependencies) describing one (structure, benchmark, delay-range)
//! experiment, runnable via `repro --config <file>`. Sample configurations
//! live in the repository's `configs/` directory.
//!
//! Recognized keys (see [`ExperimentSpec`] for semantics and defaults):
//!
//! ```text
//! benchmark = md5                      # md5|bubblesort|libstrstr|libfibcall|matmult|crc32|qsort
//! structure = alu                      # alu|decoder|regfile|lsu|prefetch|control
//! ecc = false                          # single-error-correcting register file
//! fast_adder = false                   # Kogge-Stone ALU adder
//! scale = paper                        # paper|tiny
//! delay_range = 0.1:0.9:9              # lo:hi:steps, fractions of the clock
//! percent_sampled_cycles_delay = 2.0   # temporal sampling rate, in (0, 100]
//! edge_limit = 240                     # spatial sampling cap
//! seed = 7
//! due_slack = 2000
//! orace = false                        # also compute OrDelayAVF
//! threads = 0                          # campaign workers, 0 = one per core
//! incremental = true                   # divergence-cone replay engine
//! delta_timing = true                  # incremental timing-aware engine
//! collapse = true                      # equivalence-class replay collapsing
//! lanes = 512                          # bit-parallel replay lanes, 1-512
//! timing_lanes = 512                   # timing-aware replay lanes, 1-512
//! checkpoint_dir = ckpt                # crash-safe campaign checkpoints
//! checkpoint_every = 1                 # work units between flushes
//! resume = false                       # resume from an existing checkpoint
//! telemetry = run.jsonl                # structured JSONL progress stream
//! ci_target = 0.02                     # adaptive sampling: target CI half-width
//! strata = 4                           # stratification buckets per axis
//! ```

use std::path::PathBuf;

use delayavf::{prepare_golden_percent, sample_edges, CampaignConfig};
use delayavf_netlist::Topology;
use delayavf_rvcore::{build_core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_sim::{MAX_LANES, MAX_TIMING_LANES};
use delayavf_timing::{TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

use crate::harness::{run_delay_campaign, Observability};

/// A parsed experiment configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentSpec {
    /// Benchmark kernel.
    pub benchmark: Kernel,
    /// Analyzed structure name.
    pub structure: String,
    /// ECC-protected register file.
    pub ecc: bool,
    /// Kogge–Stone ALU adder.
    pub fast_adder: bool,
    /// Workload scale.
    pub scale: Scale,
    /// Swept delay fractions.
    pub delay_fractions: Vec<f64>,
    /// Percentage of cycles to inject into.
    pub percent_cycles: f64,
    /// Maximum injected edges.
    pub edge_limit: usize,
    /// Sampling seed.
    pub seed: u64,
    /// DUE cycle budget.
    pub due_slack: u64,
    /// Compute the ORACE approximation.
    pub orace: bool,
    /// Campaign worker threads (`0` = one per available core).
    pub threads: usize,
    /// Use the incremental divergence-cone replay engine (`false` runs the
    /// exact full-replay baseline; results are identical either way).
    pub incremental: bool,
    /// Use the incremental timing-aware engine for step 1 (`false` runs the
    /// exact full event-simulation baseline; results are identical either
    /// way).
    pub delta_timing: bool,
    /// Bit-parallel replay lanes per batch (1–512; widths above 64 ride
    /// the 256/512-bit wide-word carriers). AVF numbers are identical for
    /// every value; `1` runs the exact scalar baseline.
    pub lanes: usize,
    /// Lane-packed timing-aware replay lanes per batch (1–512; widths
    /// above 64 ride the 256/512-bit wide-word carriers). AVF numbers are
    /// identical for every value; `1` runs the exact scalar baseline.
    pub timing_lanes: usize,
    /// Collapse equivalent injection sites into one representative replay
    /// and discharge provably masked/ACE classes without simulation
    /// (`false` runs the exact per-edge baseline; results are identical
    /// either way).
    pub collapse: bool,
    /// Crash-safe campaign checkpoint directory (`None` disables).
    pub checkpoint_dir: Option<PathBuf>,
    /// Work units between checkpoint flushes.
    pub checkpoint_every: usize,
    /// Resume from an existing checkpoint (missing file = fresh start;
    /// mismatched file = hard error).
    pub resume: bool,
    /// Structured JSONL telemetry file (`None` disables at zero cost).
    pub telemetry: Option<PathBuf>,
    /// Adaptive stratified sampling: target 95% CI half-width (`None`
    /// runs the exhaustive uniform campaign, byte-identical to before the
    /// knob existed).
    pub ci_target: Option<f64>,
    /// Stratification buckets per axis under `ci_target`.
    pub strata: usize,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            benchmark: Kernel::Md5,
            structure: "alu".to_owned(),
            ecc: false,
            fast_adder: false,
            scale: Scale::Paper,
            delay_fractions: (1..=9).map(|k| k as f64 / 10.0).collect(),
            percent_cycles: 2.0,
            edge_limit: 240,
            seed: 7,
            due_slack: 2_000,
            orace: false,
            threads: 0,
            incremental: true,
            delta_timing: true,
            lanes: MAX_LANES,
            timing_lanes: MAX_TIMING_LANES,
            collapse: true,
            checkpoint_dir: None,
            checkpoint_every: 1,
            resume: false,
            telemetry: None,
            ci_target: None,
            strata: delayavf::DEFAULT_STRATA,
        }
    }
}

fn parse_delay_range(text: &str) -> Result<Vec<f64>, String> {
    let parts: Vec<&str> = text.split(':').collect();
    if parts.len() != 3 {
        return Err(format!("delay_range needs `lo:hi:steps`, got `{text}`"));
    }
    let lo: f64 = parts[0]
        .trim()
        .parse()
        .map_err(|e| format!("delay_range lo: {e}"))?;
    let hi: f64 = parts[1]
        .trim()
        .parse()
        .map_err(|e| format!("delay_range hi: {e}"))?;
    let steps: usize = parts[2]
        .trim()
        .parse()
        .map_err(|e| format!("delay_range steps: {e}"))?;
    if steps == 0 || !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || hi < lo {
        return Err(format!(
            "delay_range out of order or out of [0,1]: `{text}`"
        ));
    }
    if steps == 1 {
        return Ok(vec![lo]);
    }
    Ok((0..steps)
        .map(|k| lo + (hi - lo) * k as f64 / (steps - 1) as f64)
        .collect())
}

impl ExperimentSpec {
    /// Parses a configuration file's contents.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for unknown keys,
    /// malformed values or out-of-range parameters.
    pub fn parse(text: &str) -> Result<ExperimentSpec, String> {
        let mut spec = ExperimentSpec::default();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", no + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |e: String| format!("line {}: {e}", no + 1);
            match key {
                "benchmark" => {
                    spec.benchmark = Kernel::parse(value)
                        .ok_or_else(|| bad(format!("unknown benchmark `{value}`")))?;
                }
                "structure" => spec.structure = value.to_owned(),
                "ecc" => spec.ecc = parse_bool(value).map_err(bad)?,
                "fast_adder" => spec.fast_adder = parse_bool(value).map_err(bad)?,
                "scale" => {
                    spec.scale = match value {
                        "paper" => Scale::Paper,
                        "tiny" => Scale::Tiny,
                        other => return Err(bad(format!("unknown scale `{other}`"))),
                    }
                }
                "delay_range" => spec.delay_fractions = parse_delay_range(value).map_err(bad)?,
                "percent_sampled_cycles_delay" => {
                    let percent: f64 = value
                        .parse()
                        .map_err(|e| bad(format!("percent_sampled_cycles_delay: {e}")))?;
                    spec.percent_cycles =
                        validate_percent(percent).map_err(|e| bad(format!("{e} `{value}`")))?;
                }
                "edge_limit" => {
                    spec.edge_limit = value.parse().map_err(|e| bad(format!("edge_limit: {e}")))?;
                }
                "seed" => spec.seed = value.parse().map_err(|e| bad(format!("seed: {e}")))?,
                "due_slack" => {
                    spec.due_slack = value.parse().map_err(|e| bad(format!("due_slack: {e}")))?;
                }
                "orace" => spec.orace = parse_bool(value).map_err(bad)?,
                "threads" => {
                    spec.threads = value.parse().map_err(|e| bad(format!("threads: {e}")))?;
                }
                "incremental" => spec.incremental = parse_bool(value).map_err(bad)?,
                "delta_timing" => spec.delta_timing = parse_bool(value).map_err(bad)?,
                "collapse" => spec.collapse = parse_bool(value).map_err(bad)?,
                "lanes" => {
                    let lanes: usize = value.parse().map_err(|e| bad(format!("lanes: {e}")))?;
                    if !(1..=MAX_LANES).contains(&lanes) {
                        return Err(bad(format!(
                            "lanes must be in 1..={MAX_LANES}, got `{value}`"
                        )));
                    }
                    spec.lanes = lanes;
                }
                "timing_lanes" => {
                    let lanes: usize = value
                        .parse()
                        .map_err(|e| bad(format!("timing_lanes: {e}")))?;
                    if !(1..=MAX_TIMING_LANES).contains(&lanes) {
                        return Err(bad(format!(
                            "timing_lanes must be in 1..={MAX_TIMING_LANES}, got `{value}`"
                        )));
                    }
                    spec.timing_lanes = lanes;
                }
                "checkpoint_dir" => spec.checkpoint_dir = Some(PathBuf::from(value)),
                "checkpoint_every" => {
                    spec.checkpoint_every = value
                        .parse()
                        .map_err(|e| bad(format!("checkpoint_every: {e}")))?;
                }
                "resume" => spec.resume = parse_bool(value).map_err(bad)?,
                "telemetry" => spec.telemetry = Some(PathBuf::from(value)),
                "ci_target" => {
                    let target: f64 = value.parse().map_err(|e| bad(format!("ci_target: {e}")))?;
                    spec.ci_target = Some(delayavf::validate_ci_target(target).map_err(bad)?);
                }
                "strata" => {
                    let strata: usize = value.parse().map_err(|e| bad(format!("strata: {e}")))?;
                    spec.strata = delayavf::validate_strata(strata).map_err(bad)?;
                }
                other => return Err(bad(format!("unknown key `{other}`"))),
            }
        }
        Ok(spec)
    }

    /// Loads and parses a configuration file.
    ///
    /// # Errors
    ///
    /// Propagates I/O problems and parse errors as messages.
    pub fn load(path: &str) -> Result<ExperimentSpec, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        ExperimentSpec::parse(&text)
    }

    /// Runs the configured experiment and renders a report (one row per
    /// delay fraction, with Wilson confidence bounds).
    ///
    /// # Errors
    ///
    /// Propagates observability setup failures and checkpoint mismatches.
    pub fn run(&self) -> Result<String, String> {
        let core = build_core(CoreConfig {
            ecc_regfile: self.ecc,
            fast_adder: self.fast_adder,
        });
        let topo = Topology::new(&core.circuit);
        let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
        let workload = self.benchmark.build(self.scale);
        let program = workload.assemble().expect("workload assembles");
        let env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &program);
        let golden = prepare_golden_percent(
            &core.circuit,
            &topo,
            &env,
            workload.max_cycles,
            self.percent_cycles,
            self.seed,
        );
        let edges = sample_edges(
            &topo
                .structure_edges(&core.circuit, &self.structure)
                .expect("structure exists"),
            self.edge_limit,
            self.seed,
        );
        let config = CampaignConfig {
            delay_fractions: self.delay_fractions.clone(),
            compute_orace: self.orace,
            due_slack: self.due_slack,
            threads: self.threads,
            incremental: self.incremental,
            delta_timing: self.delta_timing,
            lanes: self.lanes,
            timing_lanes: self.timing_lanes,
            collapse: self.collapse,
            ci_target: self.ci_target,
            strata: self.strata,
            sample_seed: self.seed,
        };
        let obs = Observability::create(
            self.telemetry.as_deref(),
            self.checkpoint_dir.as_deref(),
            self.checkpoint_every,
            self.resume,
        )?;
        let label = format!("cfg-{}-{}", self.structure, self.benchmark);
        let (rows, stats) = run_delay_campaign(
            &obs,
            &label,
            &core.circuit,
            &topo,
            &timing,
            &golden,
            &edges,
            &config,
        )?;

        let mut table = Vec::new();
        for r in &rows {
            let (lo, hi) = r.delay_avf_interval();
            let mut row = vec![
                format!("{:.0}%", 100.0 * r.delay_fraction),
                format!("{:.2}%", 100.0 * r.static_fraction()),
                format!("{:.3}%", 100.0 * r.dynamic_fraction()),
                format!("{:.5}", r.delay_avf()),
                format!("[{lo:.5}, {hi:.5}]"),
                format!("{}/{}", r.sdc_hits, r.due_hits),
            ];
            if self.orace {
                row.push(format!("{:.5}", r.or_delay_avf().unwrap_or(0.0)));
            }
            if let Some(est) = r.adaptive {
                row.push(format!("{:.5} [{:.5}, {:.5}]", est.point, est.lo, est.hi));
                row.push(format!("{}/{}", est.sampled, est.population));
            }
            table.push(row);
        }
        let mut headers = vec!["d", "static", "dynamic", "DelayAVF", "95% CI", "SDC/DUE"];
        if self.orace {
            headers.push("OrDelayAVF");
        }
        if self.ci_target.is_some() {
            headers.push("adaptive (95% CI)");
            headers.push("sites");
        }
        let mut report = format!(
            "{} / {} (ecc={}, N sampled at {}%, {} edges, {} cycles sampled)\n{}",
            self.structure,
            self.benchmark,
            self.ecc,
            self.percent_cycles,
            edges.len(),
            golden.sampled_cycles.len(),
            delayavf::render_table(&headers, &table)
        );
        if let Some(target) = self.ci_target {
            report.push_str(&format!(
                "\nadaptive: ci_target={target}, {} strata active, {} retired early, {} replays saved\n",
                stats.strata_active, stats.strata_retired_early, stats.adaptive_replays_saved
            ));
        }
        Ok(report)
    }
}

/// A temporal sampling rate must be a real percentage: finite, strictly
/// positive and at most 100. [`delayavf::percent_to_count`] clamps its
/// result to at least one cycle, so without this boundary check a negative
/// or NaN rate would silently sample a single cycle instead of erroring.
fn validate_percent(percent: f64) -> Result<f64, String> {
    if percent.is_finite() && percent > 0.0 && percent <= 100.0 {
        Ok(percent)
    } else {
        Err("percent_sampled_cycles_delay must be in (0, 100], got".to_owned())
    }
}

fn parse_bool(v: &str) -> Result<bool, String> {
    match v {
        "true" | "on" | "1" => Ok(true),
        "false" | "off" | "0" => Ok(false),
        other => Err(format!("expected a boolean, got `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_config() {
        let spec = ExperimentSpec::parse(
            r#"
            # Figure 9, md5 group
            benchmark = md5
            structure = alu
            ecc = false
            delay_range = 0.1:0.9:9
            percent_sampled_cycles_delay = 4.0
            edge_limit = 100
            seed = 42
            orace = true
            threads = 3
            incremental = false
            delta_timing = off
            collapse = off
            lanes = 16
            timing_lanes = 128
            checkpoint_dir = ckpt
            checkpoint_every = 3
            resume = true
            telemetry = run.jsonl
            "#,
        )
        .unwrap();
        assert_eq!(spec.benchmark, Kernel::Md5);
        assert_eq!(spec.structure, "alu");
        assert_eq!(spec.delay_fractions.len(), 9);
        assert!((spec.delay_fractions[0] - 0.1).abs() < 1e-12);
        assert!((spec.delay_fractions[8] - 0.9).abs() < 1e-12);
        assert!((spec.percent_cycles - 4.0).abs() < 1e-12);
        assert_eq!(spec.edge_limit, 100);
        assert_eq!(spec.seed, 42);
        assert!(spec.orace);
        assert_eq!(spec.threads, 3);
        assert!(!spec.incremental);
        assert!(!spec.delta_timing);
        assert!(!spec.collapse);
        assert_eq!(spec.lanes, 16);
        assert_eq!(spec.timing_lanes, 128);
        assert_eq!(spec.checkpoint_dir, Some(PathBuf::from("ckpt")));
        assert_eq!(spec.checkpoint_every, 3);
        assert!(spec.resume);
        assert_eq!(spec.telemetry, Some(PathBuf::from("run.jsonl")));
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        assert!(ExperimentSpec::parse("frobnicate = 1\n")
            .unwrap_err()
            .contains("unknown key"));
        assert!(ExperimentSpec::parse("benchmark = doom\n")
            .unwrap_err()
            .contains("unknown benchmark"));
        assert!(ExperimentSpec::parse("delay_range = 0.9:0.1:5\n")
            .unwrap_err()
            .contains("out of order"));
        assert!(ExperimentSpec::parse("ecc = maybe\n")
            .unwrap_err()
            .contains("boolean"));
        assert!(ExperimentSpec::parse("just a line\n")
            .unwrap_err()
            .contains("key = value"));
    }

    #[test]
    fn rejects_out_of_range_lane_widths() {
        assert_eq!(
            ExperimentSpec::parse("lanes = 0\n").unwrap_err(),
            "line 1: lanes must be in 1..=512, got `0`"
        );
        assert_eq!(
            ExperimentSpec::parse("lanes = 513\n").unwrap_err(),
            "line 1: lanes must be in 1..=512, got `513`"
        );
        assert_eq!(
            ExperimentSpec::parse("timing_lanes = 0\n").unwrap_err(),
            "line 1: timing_lanes must be in 1..=512, got `0`"
        );
        assert_eq!(
            ExperimentSpec::parse("timing_lanes = 513\n").unwrap_err(),
            "line 1: timing_lanes must be in 1..=512, got `513`"
        );
        // The full valid ranges parse.
        assert_eq!(ExperimentSpec::parse("lanes = 1\n").unwrap().lanes, 1);
        assert_eq!(ExperimentSpec::parse("lanes = 512\n").unwrap().lanes, 512);
        assert_eq!(
            ExperimentSpec::parse("timing_lanes = 512\n")
                .unwrap()
                .timing_lanes,
            512
        );
    }

    #[test]
    fn rejects_out_of_range_sampling_percentages() {
        assert_eq!(
            ExperimentSpec::parse("percent_sampled_cycles_delay = -4.0\n").unwrap_err(),
            "line 1: percent_sampled_cycles_delay must be in (0, 100], got `-4.0`"
        );
        assert_eq!(
            ExperimentSpec::parse("percent_sampled_cycles_delay = 0\n").unwrap_err(),
            "line 1: percent_sampled_cycles_delay must be in (0, 100], got `0`"
        );
        assert_eq!(
            ExperimentSpec::parse("percent_sampled_cycles_delay = 100.5\n").unwrap_err(),
            "line 1: percent_sampled_cycles_delay must be in (0, 100], got `100.5`"
        );
        assert_eq!(
            ExperimentSpec::parse("percent_sampled_cycles_delay = NaN\n").unwrap_err(),
            "line 1: percent_sampled_cycles_delay must be in (0, 100], got `NaN`"
        );
        assert_eq!(
            ExperimentSpec::parse("percent_sampled_cycles_delay = inf\n").unwrap_err(),
            "line 1: percent_sampled_cycles_delay must be in (0, 100], got `inf`"
        );
        let ok = ExperimentSpec::parse("percent_sampled_cycles_delay = 100\n").unwrap();
        assert!((ok.percent_cycles - 100.0).abs() < 1e-12);
    }

    #[test]
    fn single_step_range_is_one_fraction() {
        let spec = ExperimentSpec::parse("delay_range = 0.5:0.9:1\n").unwrap();
        assert_eq!(spec.delay_fractions, vec![0.5]);
    }

    #[test]
    fn tiny_config_runs_end_to_end() {
        let spec = ExperimentSpec::parse(
            r#"
            benchmark = libstrstr
            structure = alu
            scale = tiny
            delay_range = 0.9:0.9:1
            percent_sampled_cycles_delay = 2.0
            edge_limit = 30
            "#,
        )
        .unwrap();
        let report = spec.run().unwrap();
        assert!(report.contains("DelayAVF"), "{report}");
        assert!(report.contains("95% CI"));
    }
}
