//! The experiment implementations, one per table/figure of the paper.

use std::fmt::Write as _;

use delayavf::{
    geometric_mean_floored, render_table, CampaignConfig, DelayAvfResult, NormalizedSeries,
};
use delayavf_netlist::StructureStats;
use delayavf_rvcore::{MemEnv, DEFAULT_RAM_BYTES};
use delayavf_sim::CycleSim;
use delayavf_timing::PathHistogram;
use delayavf_workloads::Kernel;

use crate::harness::{run_delay_campaign, run_savf_campaign, Harness, Opts, StructureSel};

/// A finished experiment: identifier, headline and rendered report.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Short id (`table1`, `fig7`, ...).
    pub id: &'static str,
    /// Human headline.
    pub title: String,
    /// Rendered plain-text report.
    pub report: String,
}

impl std::fmt::Display for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        f.write_str(&self.report)
    }
}

/// The delay fractions swept by the figure experiments (the paper's
/// 10%–90%).
pub const DELAY_FRACTIONS: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

const PAPER_STRUCTS: [StructureSel; 6] = [
    StructureSel::Plain("alu"),
    StructureSel::Plain("decoder"),
    StructureSel::Plain("regfile"),
    StructureSel::Ecc("regfile"),
    StructureSel::Plain("lsu"),
    StructureSel::Plain("prefetch"),
];

/// Checkpoint/telemetry label of one campaign. Content-addressed by
/// everything that varies between the repro experiments (structure, kernel,
/// fraction sweep, ORACE), so experiments that re-run the *same* campaign
/// (e.g. fig7 and multibit on the ALU) share one checkpoint file — the
/// fingerprint inside the file guarantees that sharing is sound.
fn campaign_label(
    prefix: &str,
    sel: StructureSel,
    kernel: Kernel,
    fractions: &[f64],
    orace: bool,
) -> String {
    let mut label = format!("{prefix}-{}-{}", sel.label(), kernel);
    for f in fractions {
        let _ = write!(label, "-d{:.0}", 100.0 * f);
    }
    if orace {
        label.push_str("-orace");
    }
    label
}

/// Runs (and caches inside the harness via the golden runs) a full DelayAVF
/// sweep for one structure × kernel.
fn sweep(
    h: &mut Harness,
    sel: StructureSel,
    kernel: Kernel,
    opts: &Opts,
    orace: bool,
    fractions: &[f64],
) -> Result<Vec<DelayAvfResult>, String> {
    let obs = h.obs.clone();
    let label = campaign_label("davf", sel, kernel, fractions, orace);
    let variant = h.variant_mut(sel);
    let golden = variant.golden(kernel, opts);
    let edges = variant.edges(sel.name(), opts);
    let config = CampaignConfig {
        delay_fractions: fractions.to_vec(),
        compute_orace: orace,
        due_slack: opts.due_slack,
        threads: opts.threads,
        incremental: opts.incremental,
        delta_timing: opts.delta_timing,
        lanes: opts.lanes,
        timing_lanes: opts.timing_lanes,
        collapse: opts.collapse,
        ci_target: opts.ci_target,
        strata: opts.strata,
        sample_seed: opts.seed,
    };
    Ok(run_delay_campaign(
        &obs,
        &label,
        &variant.core.circuit,
        &variant.topo,
        &variant.timing,
        &golden,
        &edges,
        &config,
    )?
    .0)
}

/// **Table I** — sizes of the examined structures (the paper's "# injected
/// wires (E)").
pub fn table1(h: &mut Harness) -> Result<Experiment, String> {
    // Paper's Ibex wire counts, for side-by-side shape comparison.
    let paper: [(&str, u64); 6] = [
        ("alu", 3668),
        ("decoder", 1007),
        ("regfile", 17816),
        ("regfile (ECC)", 19611),
        ("lsu", 2027),
        ("prefetch", 3249),
    ];
    let mut rows = Vec::new();
    for (sel, (_, paper_wires)) in PAPER_STRUCTS.into_iter().zip(paper) {
        let v = h.variant_mut(sel);
        let stats = StructureStats::collect(&v.core.circuit, &v.topo, sel.name())
            .expect("structure exists");
        rows.push(vec![
            sel.label(),
            stats.edges.to_string(),
            stats.gates.to_string(),
            stats.dffs.to_string(),
            paper_wires.to_string(),
        ]);
    }
    Ok(Experiment {
        id: "table1",
        title: "statistics about the examined structures".into(),
        report: render_table(
            &[
                "structure",
                "# injected wires (E)",
                "gates",
                "dffs",
                "paper (Ibex)",
            ],
            &rows,
        ),
    })
}

/// **Table II** — executed cycles per benchmark on the gate-level core.
pub fn table2(h: &mut Harness, opts: &Opts) -> Result<Experiment, String> {
    let paper: [u64; 5] = [1720, 3829, 1051, 2448, 8903];
    let mut rows = Vec::new();
    for (kernel, paper_cycles) in Kernel::ALL.into_iter().zip(paper) {
        let w = kernel.build(opts.scale);
        let p = w.assemble().expect("workload assembles");
        let v = &h.plain;
        let mut env = MemEnv::new(&v.core.circuit, DEFAULT_RAM_BYTES, &p);
        let mut sim = CycleSim::new(&v.core.circuit, &v.topo);
        let summary = sim.run(&mut env, w.max_cycles);
        assert_eq!(
            env.exit_code(),
            Some(w.expected_exit),
            "{kernel} exits with its reference value"
        );
        rows.push(vec![
            kernel.name().to_owned(),
            summary.end_cycle.to_string(),
            paper_cycles.to_string(),
        ]);
    }
    Ok(Experiment {
        id: "table2",
        title: "number of cycles executed per benchmark".into(),
        report: render_table(&["benchmark", "# cycles (N)", "paper (Ibex)"], &rows),
    })
}

/// **Figure 6** — path length distributions per structure.
pub fn fig6(h: &mut Harness) -> Result<Experiment, String> {
    let bins = 10;
    let mut report = String::new();
    let mut rows = Vec::new();
    for sel in PAPER_STRUCTS {
        let v = h.variant_mut(sel);
        let edges = v
            .topo
            .structure_edges(&v.core.circuit, sel.name())
            .expect("structure exists");
        let hist = PathHistogram::from_edges(&v.core.circuit, &v.topo, &v.timing, &edges, bins);
        rows.push(vec![
            sel.label(),
            format!("{:.1}%", 100.0 * hist.fraction_at_least(0.5)),
            format!("{:.1}%", 100.0 * hist.fraction_at_least(0.75)),
            format!("{:.1}%", 100.0 * hist.fraction_at_least(0.9)),
        ]);
        let _ = writeln!(
            report,
            "\n[{}] clock = {} ps",
            sel.label(),
            hist.clock_period()
        );
        report.push_str(&hist.to_string());
    }
    let summary = render_table(
        &["structure", "paths ≥50% clk", "≥75% clk", "≥90% clk"],
        &rows,
    );
    Ok(Experiment {
        id: "fig6",
        title: "path length distributions for different structures".into(),
        report: format!("{summary}{report}"),
    })
}

/// **Figure 7** — normalized geomean DelayAVF across benchmarks for the
/// ALU, decoder and register file, as a function of the delay duration.
pub fn fig7(h: &mut Harness, opts: &Opts) -> Result<Experiment, String> {
    let structs = [
        StructureSel::Plain("alu"),
        StructureSel::Plain("decoder"),
        StructureSel::Plain("regfile"),
    ];
    let mut series = Vec::new();
    for sel in structs {
        // Geomean across benchmarks per delay fraction, floored at the
        // sampling resolution (half a hit) so unobserved cells do not
        // collapse the product.
        let mut per_kernel: Vec<Vec<f64>> = Vec::new();
        let mut floor = 1e-9;
        for kernel in Kernel::ALL {
            let rows = sweep(h, sel, kernel, opts, false, &DELAY_FRACTIONS)?;
            floor = 0.5 / rows[0].injections.max(1) as f64;
            per_kernel.push(rows.iter().map(DelayAvfResult::delay_avf).collect());
        }
        let geo: Vec<f64> = (0..DELAY_FRACTIONS.len())
            .map(|i| {
                geometric_mean_floored(&per_kernel.iter().map(|k| k[i]).collect::<Vec<_>>(), floor)
            })
            .collect();
        series.push(NormalizedSeries::new(sel.label(), geo));
    }
    Ok(Experiment {
        id: "fig7",
        title: "normalized geomean DelayAVF across structures".into(),
        report: render_series_table(&series),
    })
}

/// **Figure 8** — component breakdown (static reach, dynamic reach,
/// GroupACE) for (ALU, libstrstr), (regfile, libstrstr), (ALU, md5).
pub fn fig8(h: &mut Harness, opts: &Opts) -> Result<Experiment, String> {
    let cases = [
        (StructureSel::Plain("alu"), Kernel::Libstrstr),
        (StructureSel::Plain("regfile"), Kernel::Libstrstr),
        (StructureSel::Plain("alu"), Kernel::Md5),
    ];
    let mut report = String::new();
    for (sel, kernel) in cases {
        let rows = sweep(h, sel, kernel, opts, false, &DELAY_FRACTIONS)?;
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0}%", 100.0 * r.delay_fraction),
                    format!("{:.2}%", 100.0 * r.static_fraction()),
                    format!("{:.2}%", 100.0 * r.dynamic_fraction()),
                    format!("{:.2}%", 100.0 * r.delay_avf()),
                ]
            })
            .collect();
        let _ = writeln!(report, "\n[{} / {}]", sel.label(), kernel);
        report.push_str(&render_table(
            &["d", "static reach", "dynamic reach", "GroupACE"],
            &table,
        ));
    }
    Ok(Experiment {
        id: "fig8",
        title: "DelayAVF components for selected structures and benchmarks".into(),
        report,
    })
}

/// **Figure 9** — per-benchmark normalized DelayAVF of the ALU.
pub fn fig9(h: &mut Harness, opts: &Opts) -> Result<Experiment, String> {
    let sel = StructureSel::Plain("alu");
    let mut series = Vec::new();
    for kernel in Kernel::ALL {
        let rows = sweep(h, sel, kernel, opts, false, &DELAY_FRACTIONS)?;
        series.push(NormalizedSeries::new(
            kernel.name(),
            rows.iter().map(DelayAvfResult::delay_avf).collect(),
        ));
    }
    Ok(Experiment {
        id: "fig9",
        title: "normalized DelayAVF of the ALU across benchmarks".into(),
        report: render_series_table(&series),
    })
}

/// **Figure 10** — sAVF vs DelayAVF for the stateful structures (geomean
/// across benchmarks, both normalized to their own maxima).
pub fn fig10(h: &mut Harness, opts: &Opts) -> Result<Experiment, String> {
    let structs = [
        StructureSel::Plain("regfile"),
        StructureSel::Ecc("regfile"),
        StructureSel::Plain("lsu"),
        StructureSel::Plain("prefetch"),
    ];
    // DelayAVF evaluated at d = 90%, where error-producing SDFs are dense
    // enough for stable statistics on stateful structures.
    let davf_fraction = [0.9];
    let mut labels = Vec::new();
    let mut savf_geo = Vec::new();
    let mut davf_geo = Vec::new();
    for sel in structs {
        let mut savfs = Vec::new();
        let mut davfs = Vec::new();
        for kernel in Kernel::ALL {
            let davf = sweep(h, sel, kernel, opts, false, &davf_fraction)?[0].delay_avf();
            let obs = h.obs.clone();
            let label = format!("savf-{}-{}", sel.label(), kernel);
            let variant = h.variant_mut(sel);
            let golden = variant.golden(kernel, opts);
            let dffs = variant.dffs(sel.name(), opts);
            let savf = run_savf_campaign(
                &obs,
                &label,
                &variant.core.circuit,
                &variant.topo,
                &variant.timing,
                &golden,
                &dffs,
                opts.replay_options(),
            )?
            .0
            .savf();
            savfs.push(savf);
            davfs.push(davf);
        }
        labels.push(sel.label());
        savf_geo.push(geometric_mean_floored(&savfs, 1e-6));
        davf_geo.push(geometric_mean_floored(&davfs, 1e-6));
    }
    let savf_max = savf_geo.iter().copied().fold(0.0f64, f64::max);
    let davf_max = davf_geo.iter().copied().fold(0.0f64, f64::max);
    let rows: Vec<Vec<String>> = labels
        .iter()
        .zip(savf_geo.iter().zip(&davf_geo))
        .map(|(label, (&s, &d))| {
            vec![
                label.clone(),
                format!("{:.4}", s),
                format!("{:.3}", if savf_max > 0.0 { s / savf_max } else { 0.0 }),
                format!("{:.5}", d),
                format!("{:.3}", if davf_max > 0.0 { d / davf_max } else { 0.0 }),
            ]
        })
        .collect();
    Ok(Experiment {
        id: "fig10",
        title: "geomean sAVF vs DelayAVF for stateful structures".into(),
        report: render_table(
            &[
                "structure",
                "sAVF",
                "sAVF (norm)",
                "DelayAVF@90%",
                "DelayAVF (norm)",
            ],
            &rows,
        ),
    })
}

/// **Table III** — ACE interference / compounding and the OrDelayAVF
/// approximation error at d = 90%.
pub fn table3(h: &mut Harness, opts: &Opts) -> Result<Experiment, String> {
    let structs = [
        StructureSel::Plain("alu"),
        StructureSel::Plain("decoder"),
        StructureSel::Plain("regfile"),
        StructureSel::Ecc("regfile"),
    ];
    let mut rows = Vec::new();
    for sel in structs {
        let mut interference = Vec::new();
        let mut compounding = Vec::new();
        let mut rel_change = Vec::new();
        for kernel in Kernel::ALL {
            let r = &sweep(h, sel, kernel, opts, true, &[0.9])?[0];
            interference.push(r.interference_pct().unwrap_or(0.0));
            compounding.push(r.compounding_pct().unwrap_or(0.0));
            rel_change.push(r.or_relative_change_pct().unwrap_or(0.0));
        }
        let maxavg = |v: &[f64]| {
            (
                v.iter().copied().fold(0.0f64, f64::max),
                v.iter().sum::<f64>() / v.len() as f64,
            )
        };
        let (i_max, i_avg) = maxavg(&interference);
        let (c_max, c_avg) = maxavg(&compounding);
        let (r_max, r_avg) = maxavg(&rel_change);
        rows.push(vec![
            sel.label(),
            format!("{i_max:.2}"),
            format!("{i_avg:.2}"),
            format!("{c_max:.2}"),
            format!("{c_avg:.2}"),
            format!("{r_max:.2}"),
            format!("{r_avg:.2}"),
        ]);
    }
    Ok(Experiment {
        id: "table3",
        title: "ACE interference/compounding and DelayAVF→OrDelayAVF change (%) at d=90%".into(),
        report: render_table(
            &[
                "structure",
                "max int %",
                "avg int %",
                "max comp %",
                "avg comp %",
                "max Δrel %",
                "avg Δrel %",
            ],
            &rows,
        ),
    })
}

/// **Multi-bit statistics** — the prose result of §VI-B: the fraction of
/// error-producing SDFs whose dynamically reachable set is multi-bit,
/// aggregated over structures and benchmarks per delay duration.
pub fn multibit(h: &mut Harness, opts: &Opts) -> Result<Experiment, String> {
    let structs = [
        StructureSel::Plain("alu"),
        StructureSel::Plain("decoder"),
        StructureSel::Plain("regfile"),
    ];
    let mut multi = vec![0usize; DELAY_FRACTIONS.len()];
    let mut dynamic = vec![0usize; DELAY_FRACTIONS.len()];
    for sel in structs {
        for kernel in Kernel::ALL {
            let rows = sweep(h, sel, kernel, opts, false, &DELAY_FRACTIONS)?;
            for (i, r) in rows.iter().enumerate() {
                multi[i] += r.multi_bit_hits;
                dynamic[i] += r.dynamic_hits;
            }
        }
    }
    let rows: Vec<Vec<String>> = DELAY_FRACTIONS
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let pct = if dynamic[i] == 0 {
                0.0
            } else {
                100.0 * multi[i] as f64 / dynamic[i] as f64
            };
            vec![
                format!("{:.0}%", 100.0 * d),
                dynamic[i].to_string(),
                multi[i].to_string(),
                format!("{pct:.1}%"),
            ]
        })
        .collect();
    Ok(Experiment {
        id: "multibit",
        title: "fraction of state-element errors that are multi-bit".into(),
        report: render_table(
            &["d", "error-producing SDFs", "multi-bit", "% multi-bit"],
            &rows,
        ),
    })
}

/// **Guardband ablation** (extension) — DelayAVF of the ALU as the clock
/// period is stretched beyond the critical path. Timing guardbands are the
/// canonical circuit-level mitigation for small delay faults: extra slack
/// absorbs a larger `d` before any path misses the latch deadline.
pub fn guardband(h: &mut Harness, opts: &Opts) -> Result<Experiment, String> {
    use delayavf::Injector;
    let sel = StructureSel::Plain("alu");
    let kernel = Kernel::Libstrstr;
    let variant = h.variant_mut(sel);
    let golden = variant.golden(kernel, opts);
    let edges = variant.edges(sel.name(), opts);
    // The *absolute* delay is fixed at 60% of the unguarded clock; the
    // guardband then eats into it.
    let extra = (variant.timing.clock_period() as f64 * 0.6) as u64;
    let mut rows = Vec::new();
    for margin in [0.0, 10.0, 20.0, 30.0, 50.0] {
        let timing = variant.timing.with_guardband(margin);
        let mut inj = Injector::new(
            &variant.core.circuit,
            &variant.topo,
            &timing,
            &golden,
            opts.due_slack,
        );
        inj.set_incremental(opts.incremental);
        let (mut injections, mut dynamic, mut ace) = (0usize, 0usize, 0usize);
        for &cycle in &golden.sampled_cycles {
            if cycle + 1 >= golden.trace.num_cycles() {
                continue;
            }
            for &e in &edges {
                let out = inj.inject(cycle, e, extra);
                injections += 1;
                if !out.dynamic_set.is_empty() {
                    dynamic += 1;
                }
                if out.visible {
                    ace += 1;
                }
            }
        }
        rows.push(vec![
            format!("{margin:.0}%"),
            timing.clock_period().to_string(),
            format!("{:.3}%", 100.0 * dynamic as f64 / injections.max(1) as f64),
            format!("{:.3}%", 100.0 * ace as f64 / injections.max(1) as f64),
        ]);
    }
    Ok(Experiment {
        id: "guardband",
        title: "mitigation ablation: clock guardband vs DelayAVF (ALU, libstrstr, fixed 60%-of-clock SDF)"
            .into(),
        report: render_table(&["guardband", "clock (ps)", "dynamic reach", "DelayAVF"], &rows),
    })
}

/// **Adder ablation** (extension) — how the ALU's DelayAVF profile shifts
/// when the ripple-carry adder is replaced by a Kogge–Stone
/// parallel-prefix adder. The prefix adder flattens the path-length
/// distribution (Fig. 6's lever), which moves static reachability and
/// DelayAVF.
pub fn fastadder(h: &mut Harness, opts: &Opts) -> Result<Experiment, String> {
    let kernel = Kernel::Md5;
    let fractions = [0.3, 0.6, 0.9];
    let mut report = String::new();
    let mut rows = Vec::new();
    for sel in [StructureSel::Plain("alu"), StructureSel::Fast("alu")] {
        let (clock, frac75) = {
            let v = h.variant_mut(sel);
            let edges = v
                .topo
                .structure_edges(&v.core.circuit, "alu")
                .expect("alu tagged");
            let hist = PathHistogram::from_edges(&v.core.circuit, &v.topo, &v.timing, &edges, 10);
            (v.timing.clock_period(), hist.fraction_at_least(0.75))
        };
        let sweep_rows = sweep(h, sel, kernel, opts, false, &fractions)?;
        let mut row = vec![
            sel.label(),
            clock.to_string(),
            format!("{:.1}%", 100.0 * frac75),
        ];
        for r in &sweep_rows {
            row.push(format!("{:.4}%", 100.0 * r.delay_avf()));
        }
        rows.push(row);
    }
    let _ = writeln!(
        report,
        "{}",
        render_table(
            &[
                "ALU variant",
                "clock (ps)",
                "ALU paths ≥75% clk",
                "DelayAVF d=30%",
                "d=60%",
                "d=90%",
            ],
            &rows,
        )
    );
    Ok(Experiment {
        id: "fastadder",
        title: "microarchitectural ablation: ripple-carry vs Kogge–Stone ALU adder (md5)".into(),
        report,
    })
}

/// **Sampling variance** (extension) — the same (structure, benchmark, d)
/// cell measured under several sampling seeds, with Wilson bounds. Shows
/// how much of a statistically-sampled DelayAVF is noise at the configured
/// density, the caveat any statistical fault-injection result must carry.
pub fn variance(h: &mut Harness, opts: &Opts) -> Result<Experiment, String> {
    let sel = StructureSel::Plain("alu");
    let kernel = Kernel::Bubblesort;
    let mut rows = Vec::new();
    for k in 0..3u64 {
        let seeded = Opts {
            seed: opts.seed + 1000 * k,
            ..opts.clone()
        };
        let obs = h.obs.clone();
        // The seed changes the golden trace, so it must be part of the
        // label — otherwise the three runs would collide on one checkpoint
        // file and trip its fingerprint check.
        let label = format!("davf-variance-{}-{}-s{}", sel.label(), kernel, seeded.seed);
        let variant = h.variant_mut(sel);
        let golden = variant.golden(kernel, &seeded);
        let edges = variant.edges(sel.name(), &seeded);
        let r = &run_delay_campaign(
            &obs,
            &label,
            &variant.core.circuit,
            &variant.topo,
            &variant.timing,
            &golden,
            &edges,
            &CampaignConfig {
                delay_fractions: vec![0.8],
                compute_orace: false,
                due_slack: seeded.due_slack,
                threads: seeded.threads,
                incremental: seeded.incremental,
                delta_timing: seeded.delta_timing,
                lanes: seeded.lanes,
                timing_lanes: seeded.timing_lanes,
                collapse: seeded.collapse,
                ci_target: seeded.ci_target,
                strata: seeded.strata,
                sample_seed: seeded.seed,
            },
        )?
        .0[0];
        let (lo, hi) = r.delay_avf_interval();
        rows.push(vec![
            seeded.seed.to_string(),
            r.injections.to_string(),
            format!("{:.5}", r.delay_avf()),
            format!("[{lo:.5}, {hi:.5}]"),
        ]);
    }
    Ok(Experiment {
        id: "variance",
        title: "sampling variance of DelayAVF (ALU, bubblesort, d=80%, three seeds)".into(),
        report: render_table(&["seed", "injections", "DelayAVF", "95% CI"], &rows),
    })
}

fn render_series_table(series: &[NormalizedSeries]) -> String {
    let max = NormalizedSeries::global_max(series);
    let mut headers: Vec<&str> = vec!["d"];
    for s in series {
        headers.push(&s.label);
    }
    let mut rows = Vec::new();
    for (i, d) in DELAY_FRACTIONS.iter().enumerate() {
        let mut row = vec![format!("{:.0}%", 100.0 * d)];
        for s in series {
            let norm = s.normalized_by(max);
            row.push(format!("{:.3}", norm[i]));
        }
        rows.push(row);
    }
    let mut out = render_table(&headers, &rows);
    let _ = writeln!(out, "\nraw DelayAVF values (unnormalized):");
    let raw_rows: Vec<Vec<String>> = DELAY_FRACTIONS
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let mut row = vec![format!("{:.0}%", 100.0 * d)];
            for s in series {
                row.push(format!("{:.6}", s.raw[i]));
            }
            row
        })
        .collect();
    out.push_str(&render_table(&headers, &raw_rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_experiments_render() {
        let mut h = Harness::build();
        let t1 = table1(&mut h).unwrap();
        assert_eq!(t1.report.lines().count(), 8, "header + rule + 6 rows");
        assert!(t1.report.contains("regfile (ECC)"));
        assert!(t1.to_string().contains("table1"));

        let f6 = fig6(&mut h).unwrap();
        assert!(f6.report.contains("alu"));
        assert!(f6.report.contains("of clock"));
    }

    #[test]
    fn table2_runs_the_tiny_suite() {
        let mut h = Harness::build();
        let opts = Opts::quick();
        let t2 = table2(&mut h, &opts).unwrap();
        for kernel in Kernel::ALL {
            assert!(t2.report.contains(kernel.name()), "{}", kernel);
        }
    }

    #[test]
    fn quick_campaign_experiment_is_consistent() {
        let mut h = Harness::build();
        let opts = Opts::quick();
        let f8 = fig8(&mut h, &opts).unwrap();
        assert!(f8.report.contains("[alu / libstrstr]"));
        assert!(f8.report.contains("GroupACE"));
        // Re-running with the same options is deterministic.
        let again = fig8(&mut h, &opts).unwrap();
        assert_eq!(f8.report, again.report);
    }

    #[test]
    fn campaign_labels_are_content_addressed() {
        let label = campaign_label(
            "davf",
            StructureSel::Ecc("regfile"),
            Kernel::Md5,
            &[0.3, 0.9],
            true,
        );
        assert_eq!(label, "davf-regfile (ECC)-md5-d30-d90-orace");
    }
}
