//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment>... [--cycles N] [--edges N] [--dffs N] [--seed N]
//!       [--tiny] [--due-slack N] [--threads N] [--no-incremental]
//!       [--no-delta-timing] [--no-collapse] [--lanes N] [--timing-lanes N]
//!       [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
//!       [--telemetry FILE] [--ci-target X] [--strata N]
//!
//! experiments: table1 table2 table3 fig6 fig7 fig8 fig9 fig10 multibit
//!              guardband fastadder variance all (or --config <file>)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use delayavf_bench::{experiments, ExperimentSpec, Harness, Observability, Opts};
use delayavf_sim::{MAX_LANES, MAX_TIMING_LANES};
use delayavf_workloads::Scale;

const USAGE: &str = "usage: repro <experiment>... [options]

experiments:
  table1    structure sizes (# injected wires)
  table2    cycles per benchmark
  fig6      path length distributions
  fig7      normalized geomean DelayAVF per structure
  fig8      static/dynamic/GroupACE component breakdown
  fig9      per-benchmark DelayAVF of the ALU
  fig10     sAVF vs DelayAVF for stateful structures
  table3    ACE interference/compounding, OrDelayAVF error (d=90%)
  multibit  multi-bit error statistics
  guardband clock-guardband mitigation ablation (extension)
  fastadder ripple vs Kogge-Stone ALU adder ablation (extension)
  variance  sampling-seed variance with confidence bounds (extension)
  all       everything above

options:
  --cycles N      injection cycles per benchmark (default 24)
  --edges N       injected edges per structure (default 240)
  --dffs N        struck flip-flops per structure (default 72)
  --seed N        sampling seed (default 7)
  --due-slack N   DUE cycle budget (default 2000)
  --threads N     campaign worker threads; results are identical for
  (or -j N)       every N (default: one per available core)
  --no-incremental  use the exact full-replay baseline instead of the
                  incremental divergence-cone engine (identical results)
  --no-delta-timing  use the exact full event-simulation baseline instead
                  of the incremental timing-aware engine (golden-waveform
                  cache + fault-cone deltas; identical results)
  --no-collapse   replay every injection site individually instead of
                  collapsing equivalence classes and formally discharging
                  provably masked/ACE flip groups (identical results)
  --lanes N       bit-parallel replay lanes per batch, 1-512 (default
                  512; widths above 64 ride the 256/512-bit carriers);
                  AVF numbers are identical for every N, --lanes 1 is the
                  exact scalar baseline
  --timing-lanes N  lane-packed timing-aware replay lanes per batch,
                  1-512 (default 512); AVF numbers are identical for
                  every N, --timing-lanes 1 is the exact scalar baseline
  --tiny          use tiny workloads (smoke test)
  --checkpoint-dir DIR  write crash-safe campaign checkpoints into DIR;
                  an interrupted run restarted with --resume produces a
                  byte-identical report
  --checkpoint-every N  completed work units between checkpoint flushes
                  (default 1)
  --resume        resume campaigns from existing checkpoints (missing
                  files start fresh; mismatched ones are a hard error)
  --telemetry FILE  append structured JSONL progress events to FILE
  --ci-target X   adaptive stratified sampling: stop refining a stratum
                  once its 95% CI half-width is at most X (in (0, 0.5));
                  off by default, and leaving it off reproduces the
                  exhaustive reports byte-for-byte
  --strata N      stratification buckets per axis for --ci-target,
                  1-16 (default 4)
  --config FILE   run an artifact-style configuration file instead
                  (sampling options are taken from the file; the
                  checkpoint/telemetry options above still apply)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: Vec<String> = Vec::new();
    let mut opts = Opts::default();
    let mut config_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |label: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{label} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{label}: {e}"))
        };
        match arg.as_str() {
            "--cycles" => match num("--cycles") {
                Ok(v) => opts.cycles = v as usize,
                Err(e) => return fail(&e),
            },
            "--edges" => match num("--edges") {
                Ok(v) => opts.edge_limit = v as usize,
                Err(e) => return fail(&e),
            },
            "--dffs" => match num("--dffs") {
                Ok(v) => opts.dff_limit = v as usize,
                Err(e) => return fail(&e),
            },
            "--seed" => match num("--seed") {
                Ok(v) => opts.seed = v,
                Err(e) => return fail(&e),
            },
            "--due-slack" => match num("--due-slack") {
                Ok(v) => opts.due_slack = v,
                Err(e) => return fail(&e),
            },
            "--threads" | "-j" => match num("--threads") {
                Ok(v) => opts.threads = v as usize,
                Err(e) => return fail(&e),
            },
            "--lanes" => match num("--lanes") {
                Ok(v) if (1..=MAX_LANES as u64).contains(&v) => opts.lanes = v as usize,
                Ok(v) => return fail(&format!("--lanes must be in 1..={MAX_LANES}, got `{v}`")),
                Err(e) => return fail(&e),
            },
            "--timing-lanes" => match num("--timing-lanes") {
                Ok(v) if (1..=MAX_TIMING_LANES as u64).contains(&v) => {
                    opts.timing_lanes = v as usize;
                }
                Ok(v) => {
                    return fail(&format!(
                        "--timing-lanes must be in 1..={MAX_TIMING_LANES}, got `{v}`"
                    ));
                }
                Err(e) => return fail(&e),
            },
            "--tiny" => opts.scale = Scale::Tiny,
            "--no-incremental" => opts.incremental = false,
            "--no-delta-timing" => opts.delta_timing = false,
            "--no-collapse" => opts.collapse = false,
            "--checkpoint-dir" => {
                let Some(dir) = it.next() else {
                    return fail("--checkpoint-dir needs a path");
                };
                opts.checkpoint_dir = Some(PathBuf::from(dir));
            }
            "--checkpoint-every" => match num("--checkpoint-every") {
                Ok(v) => opts.checkpoint_every = v as usize,
                Err(e) => return fail(&e),
            },
            "--resume" => opts.resume = true,
            "--ci-target" => {
                let Some(raw) = it.next() else {
                    return fail("--ci-target needs a value");
                };
                let target: f64 = match raw.parse() {
                    Ok(v) => v,
                    Err(e) => return fail(&format!("--ci-target: {e}")),
                };
                match delayavf_bench::validate_ci_target(target) {
                    Ok(v) => opts.ci_target = Some(v),
                    Err(e) => return fail(&e),
                }
            }
            "--strata" => match num("--strata") {
                Ok(v) => match delayavf_bench::validate_strata(v as usize) {
                    Ok(v) => opts.strata = v,
                    Err(e) => return fail(&e),
                },
                Err(e) => return fail(&e),
            },
            "--telemetry" => {
                let Some(path) = it.next() else {
                    return fail("--telemetry needs a path");
                };
                opts.telemetry = Some(PathBuf::from(path));
            }
            "--config" => {
                let Some(path) = it.next() else {
                    return fail("--config needs a path");
                };
                config_file = Some(path.clone());
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return fail(&format!("unknown option `{other}`"));
            }
            exp => wanted.push(exp.to_owned()),
        }
    }
    if let Some(path) = config_file {
        let mut spec = match ExperimentSpec::load(&path) {
            Ok(spec) => spec,
            Err(e) => return fail(&e),
        };
        // The observability flags compose with a configuration file (so CI
        // can interrupt and resume the artifact configs), overriding its
        // keys when given on the command line.
        if opts.checkpoint_dir.is_some() {
            spec.checkpoint_dir = opts.checkpoint_dir.clone();
            spec.checkpoint_every = opts.checkpoint_every;
        }
        if opts.resume {
            spec.resume = true;
        }
        if opts.telemetry.is_some() {
            spec.telemetry = opts.telemetry.clone();
        }
        if opts.ci_target.is_some() {
            spec.ci_target = opts.ci_target;
            spec.strata = opts.strata;
        }
        return match spec.run() {
            Ok(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        };
    }
    if wanted.is_empty() {
        print!("{USAGE}");
        return ExitCode::FAILURE;
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = [
            "table1",
            "table2",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "table3",
            "multibit",
            "guardband",
            "fastadder",
            "variance",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    eprintln!("building cores and timing models ...");
    let t0 = Instant::now();
    let mut h = Harness::build();
    h.obs = match Observability::from_opts(&opts) {
        Ok(obs) => obs,
        Err(e) => return fail(&e),
    };
    eprintln!("ready in {:?}\n", t0.elapsed());

    for id in &wanted {
        let t = Instant::now();
        let exp = match id.as_str() {
            "table1" => experiments::table1(&mut h),
            "table2" => experiments::table2(&mut h, &opts),
            "fig6" => experiments::fig6(&mut h),
            "fig7" => experiments::fig7(&mut h, &opts),
            "fig8" => experiments::fig8(&mut h, &opts),
            "fig9" => experiments::fig9(&mut h, &opts),
            "fig10" => experiments::fig10(&mut h, &opts),
            "table3" => experiments::table3(&mut h, &opts),
            "multibit" => experiments::multibit(&mut h, &opts),
            "guardband" => experiments::guardband(&mut h, &opts),
            "fastadder" => experiments::fastadder(&mut h, &opts),
            "variance" => experiments::variance(&mut h, &opts),
            other => return fail(&format!("unknown experiment `{other}`")),
        };
        match exp {
            Ok(exp) => println!("{exp}"),
            Err(e) => return fail(&e),
        }
        eprintln!("[{id} took {:?}]\n", t.elapsed());
    }
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}
