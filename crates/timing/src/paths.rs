//! Path-length distributions (the paper's Figure 6).
//!
//! For every injectable edge of a structure we record the length of the
//! longest complete path traversing that edge, normalized to the clock
//! period. This is the quantity that governs static reachability (a fault of
//! duration *d* on edge *e* reaches a state element iff the longest path
//! through *e* plus *d* exceeds the clock), so the histogram plays exactly
//! the role of the paper's per-structure path distributions.

use std::fmt;

use delayavf_netlist::{Circuit, EdgeId, Topology};

use crate::model::TimingModel;
use crate::Picos;

/// A histogram of longest-path-through-edge lengths, as a fraction of the
/// clock period.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathHistogram {
    counts: Vec<usize>,
    clock_period: Picos,
}

impl PathHistogram {
    /// Builds the histogram for the given edges with `bins` equal-width
    /// buckets spanning `[0, clock_period]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn from_edges(
        c: &Circuit,
        topo: &Topology,
        model: &TimingModel,
        edges: &[EdgeId],
        bins: usize,
    ) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        let clock = model.clock_period();
        let mut counts = vec![0usize; bins];
        for &e in edges {
            let len = model.path_through_edge(c, topo, e).min(clock);
            // Bin index in [0, bins): paths at exactly the clock land in the
            // last bin.
            let idx = ((len as u128 * bins as u128) / (clock as u128 + 1)) as usize;
            counts[idx.min(bins - 1)] += 1;
        }
        PathHistogram {
            counts,
            clock_period: clock,
        }
    }

    /// Per-bin counts, lowest path lengths first.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total number of edges recorded.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// The clock period the lengths are normalized against.
    pub fn clock_period(&self) -> Picos {
        self.clock_period
    }

    /// Fraction of edges whose longest path is at least `frac` of the clock
    /// period (`frac` in `[0, 1]`). These are the edges a fault of duration
    /// `d = (1 - frac) * clock` can statically reach something through.
    pub fn fraction_at_least(&self, frac: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let bins = self.counts.len();
        let first = ((frac * bins as f64).floor() as usize).min(bins.saturating_sub(1));
        let hits: usize = self.counts[first..].iter().sum();
        hits as f64 / total as f64
    }

    /// The per-bin fractions (counts normalized by the total).
    pub fn normalized(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }
}

impl fmt::Display for PathHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total().max(1);
        let bins = self.counts.len();
        for (i, &c) in self.counts.iter().enumerate() {
            let lo = 100 * i / bins;
            let hi = 100 * (i + 1) / bins;
            let pct = 100.0 * c as f64 / total as f64;
            let bar = "#".repeat((pct / 2.0).round() as usize);
            writeln!(f, "{lo:3}-{hi:3}% of clock | {pct:6.2}% {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::techlib::TechLibrary;
    use delayavf_netlist::CircuitBuilder;

    fn chain_histogram(bins: usize) -> PathHistogram {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let n1 = b.not(a);
        let n2 = b.not(n1);
        let r = b.reg("r", false);
        b.drive(r, n2);
        b.output("q", r.q());
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        let model = TimingModel::analyze(&c, &topo, &TechLibrary::unit());
        let edges: Vec<EdgeId> = (0..topo.edges().len()).map(EdgeId::from_index).collect();
        PathHistogram::from_edges(&c, &topo, &model, &edges, bins)
    }

    #[test]
    fn histogram_covers_all_edges() {
        let h = chain_histogram(10);
        // Edges: a->n1, n1->n2, n2->dff.d, q->output = 4.
        assert_eq!(h.total(), 4);
        assert_eq!(h.clock_period(), 2000);
    }

    #[test]
    fn chain_edges_sit_on_critical_path() {
        let h = chain_histogram(10);
        // The three edges on the a->n1->n2->dff path all see the full
        // 2000 ps path; the q->output edge sees 1000 (dff clk-to-q).
        assert_eq!(h.counts()[9], 3);
        assert_eq!(h.counts()[4], 1);
        assert!((h.fraction_at_least(0.9) - 0.75).abs() < 1e-9);
        assert!((h.fraction_at_least(0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalized_sums_to_one() {
        let h = chain_histogram(7);
        let sum: f64 = h.normalized().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_renders_one_line_per_bin() {
        let h = chain_histogram(5);
        assert_eq!(h.to_string().lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = chain_histogram(0);
    }
}
