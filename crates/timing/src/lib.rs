//! Timing substrate for the DelayAVF reproduction: technology library,
//! static timing analysis (STA), path-length distributions, and the
//! *statically reachable set* computation of the paper's Definition 2.
//!
//! The paper's flow consumes gate-level timing from a synthesized netlist and
//! the NanGate 45nm open cell library. This crate plays that role for
//! circuits built with [`delayavf_netlist`]:
//!
//! * [`TechLibrary`] assigns each gate kind an intrinsic delay and a
//!   load-dependent term, plus flip-flop clock-to-Q and setup times. The
//!   [`TechLibrary::nangate45_like`] preset models the relative delays of
//!   the NanGate 45nm typical corner.
//! * [`TimingModel`] runs STA over a circuit: per-edge propagation delays,
//!   per-net latest arrival times, downstream max-path times, and the
//!   design's critical path (which sets the clock period, exactly as in the
//!   paper's §VI-A).
//! * [`TimingModel::statically_reachable`] answers the paper's Definition 2:
//!   which flip-flops terminate a path through a given fanout edge whose
//!   length, after adding an extra small delay *d*, exceeds the clock period.
//! * [`PathHistogram`] reproduces the per-structure path-length
//!   distributions of the paper's Figure 6.
//!
//! All times are integer **picoseconds** ([`Picos`]), making the analysis
//! exact and platform-independent.
//!
//! # Example
//!
//! ```
//! use delayavf_netlist::{CircuitBuilder, Topology};
//! use delayavf_timing::{TechLibrary, TimingModel};
//!
//! let mut b = CircuitBuilder::new();
//! let a = b.input("a");
//! let r = b.reg("r", false);
//! let x = b.xor(a, r.q());
//! b.drive(r, x);
//! b.output("q", r.q());
//! let c = b.finish()?;
//! let topo = Topology::new(&c);
//! let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
//! assert!(timing.clock_period() > 0);
//! # Ok::<(), delayavf_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod paths;
mod techlib;

pub use model::TimingModel;
pub use paths::PathHistogram;
pub use techlib::{CellTiming, TechLibrary};

/// Time in integer picoseconds.
///
/// All delays, arrival times and clock periods in this crate are expressed
/// in this unit.
pub type Picos = u64;
