//! Technology libraries: per-cell delay parameters.

use delayavf_netlist::{Circuit, Driver, GateKind, NetId};

use crate::Picos;

/// Delay parameters of one combinational cell.
///
/// An edge driven by this cell has delay `intrinsic + per_load * fanout`,
/// where `fanout` is the number of sinks on the driven net — the standard
/// pre-layout load model the paper adopts (§VI-A "Modeling Delays": driver
/// strength plus downstream capacitive load, no interconnect RC).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellTiming {
    /// Fixed propagation delay of the cell.
    pub intrinsic: Picos,
    /// Additional delay per sink driven.
    pub per_load: Picos,
}

impl CellTiming {
    /// Delay of this cell when driving `fanout` sinks.
    #[inline]
    pub fn delay(self, fanout: usize) -> Picos {
        self.intrinsic + self.per_load * fanout as Picos
    }
}

/// A technology library: delays for each [`GateKind`], flip-flop timing,
/// and a fixed per-connection wire delay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TechLibrary {
    name: String,
    cells: [CellTiming; 9],
    dff_clk_to_q: CellTiming,
    setup: Picos,
    wire: Picos,
}

impl TechLibrary {
    /// Builds a library from explicit parameters.
    ///
    /// `cells` is indexed in [`GateKind::ALL`] order.
    pub fn new(
        name: impl Into<String>,
        cells: [CellTiming; 9],
        dff_clk_to_q: CellTiming,
        setup: Picos,
        wire: Picos,
    ) -> Self {
        TechLibrary {
            name: name.into(),
            cells,
            dff_clk_to_q,
            setup,
            wire,
        }
    }

    /// A library whose delay ratios model the NanGate 45nm open cell
    /// library's typical corner: inverting stacks (NAND/NOR) are fastest,
    /// XOR/XNOR and MUX cost roughly two stages, and flip-flops have a
    /// substantial clock-to-Q.
    ///
    /// Absolute values are representative, not extracted: the DelayAVF
    /// methodology only depends on delays *relative* to the self-derived
    /// clock period.
    pub fn nangate45_like() -> Self {
        use GateKind::*;
        let mut cells = [CellTiming {
            intrinsic: 0,
            per_load: 0,
        }; 9];
        let spec: [(GateKind, u64, u64); 9] = [
            (Buf, 18, 3),
            (Not, 10, 3),
            (And2, 22, 4),
            (Or2, 24, 4),
            (Nand2, 14, 4),
            (Nor2, 16, 5),
            (Xor2, 32, 6),
            (Xnor2, 32, 6),
            (Mux2, 36, 6),
        ];
        for (kind, intrinsic, per_load) in spec {
            cells[Self::slot(kind)] = CellTiming {
                intrinsic,
                per_load,
            };
        }
        TechLibrary {
            name: "nangate45-like".to_owned(),
            cells,
            dff_clk_to_q: CellTiming {
                intrinsic: 55,
                per_load: 4,
            },
            setup: 35,
            wire: 2,
        }
    }

    /// A copy of this library with every delay scaled by `num / den`
    /// (setup and wire delays included). Useful for modeling process
    /// corners: e.g. `lib.scaled(13, 10)` for a slow corner, `lib.scaled(3,
    /// 4)` for a fast one. The DelayAVF methodology can then be re-applied
    /// per corner, as the paper suggests for varying operating conditions
    /// (§IV-A).
    pub fn scaled(&self, num: u64, den: u64) -> Self {
        assert!(den > 0, "scale denominator must be positive");
        let scale = |t: Picos| t * num / den;
        let scale_cell = |c: CellTiming| CellTiming {
            intrinsic: scale(c.intrinsic),
            per_load: scale(c.per_load),
        };
        TechLibrary {
            name: format!("{}-scaled-{num}/{den}", self.name),
            cells: self.cells.map(scale_cell),
            dff_clk_to_q: scale_cell(self.dff_clk_to_q),
            setup: scale(self.setup),
            wire: scale(self.wire),
        }
    }

    /// A degenerate library where every cell takes exactly 1000 ps and loads
    /// and wires are free. Useful for unit tests, where path delays then
    /// equal 1000 × logic depth.
    pub fn unit() -> Self {
        let unit_cell = CellTiming {
            intrinsic: 1000,
            per_load: 0,
        };
        TechLibrary {
            name: "unit".to_owned(),
            cells: [unit_cell; 9],
            dff_clk_to_q: unit_cell,
            setup: 0,
            wire: 0,
        }
    }

    fn slot(kind: GateKind) -> usize {
        GateKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind present in ALL")
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Delay parameters of a combinational cell.
    pub fn cell(&self, kind: GateKind) -> CellTiming {
        self.cells[Self::slot(kind)]
    }

    /// Clock-to-Q delay parameters of the flip-flop cell.
    pub fn dff_clk_to_q(&self) -> CellTiming {
        self.dff_clk_to_q
    }

    /// Flip-flop setup time.
    pub fn setup(&self) -> Picos {
        self.setup
    }

    /// Fixed wire delay added to every fanout edge.
    pub fn wire(&self) -> Picos {
        self.wire
    }

    /// The propagation delay of every fanout edge of `net`: the driver's
    /// cell delay under the net's fanout load, plus the wire delay.
    ///
    /// Primary inputs and constants are modeled as ideal (wire delay only):
    /// the environment presents inputs at the clock edge.
    pub fn edge_delay(&self, circuit: &Circuit, net: NetId, fanout: usize) -> Picos {
        let driver_delay = match circuit.net(net).driver() {
            Driver::Gate(g) => self.cell(circuit.gate(g).kind()).delay(fanout),
            Driver::Dff(_) => self.dff_clk_to_q.delay(fanout),
            Driver::Input(_) | Driver::Const(_) => 0,
        };
        driver_delay + self.wire
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayavf_netlist::CircuitBuilder;

    #[test]
    fn cell_delay_scales_with_load() {
        let t = CellTiming {
            intrinsic: 10,
            per_load: 3,
        };
        assert_eq!(t.delay(0), 10);
        assert_eq!(t.delay(4), 22);
    }

    #[test]
    fn nangate_preset_orders_cells_realistically() {
        let lib = TechLibrary::nangate45_like();
        assert!(lib.cell(GateKind::Nand2).intrinsic < lib.cell(GateKind::And2).intrinsic);
        assert!(lib.cell(GateKind::And2).intrinsic < lib.cell(GateKind::Xor2).intrinsic);
        assert!(lib.setup() > 0);
        assert_eq!(lib.name(), "nangate45-like");
    }

    #[test]
    fn edge_delay_depends_on_driver_kind() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let r = b.reg("r", false);
        let x = b.xor(a, r.q());
        b.drive(r, x);
        b.output("o", x);
        let c = b.finish().unwrap();
        let lib = TechLibrary::nangate45_like();
        // `x` drives 2 sinks (DFF d and output bit).
        let xor_edge = lib.edge_delay(&c, x, 2);
        assert_eq!(xor_edge, 32 + 6 * 2 + 2);
        // Input-driven edges cost only wire delay.
        assert_eq!(lib.edge_delay(&c, a, 1), 2);
        // DFF-driven edges use clock-to-Q.
        let q = r.q();
        assert_eq!(lib.edge_delay(&c, q, 1), 55 + 4 + 2);
    }

    #[test]
    fn scaling_multiplies_every_delay() {
        let lib = TechLibrary::nangate45_like();
        let slow = lib.scaled(13, 10);
        assert_eq!(slow.cell(GateKind::Not).intrinsic, 13);
        assert_eq!(slow.setup(), lib.setup() * 13 / 10);
        assert!(slow.name().contains("scaled"));
        // Identity scale preserves the library's numbers.
        let same = lib.scaled(1, 1);
        for k in GateKind::ALL {
            assert_eq!(same.cell(k), lib.cell(k));
        }
    }

    #[test]
    fn unit_library_is_uniform() {
        let lib = TechLibrary::unit();
        for k in GateKind::ALL {
            assert_eq!(lib.cell(k).delay(10), 1000);
        }
        assert_eq!(lib.wire(), 0);
        assert_eq!(lib.setup(), 0);
    }
}
