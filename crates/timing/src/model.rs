//! Static timing analysis over a circuit.

use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};
use std::sync::OnceLock;

use delayavf_netlist::{Circuit, Consumer, DffId, Driver, EdgeId, NetId, Topology};

use crate::techlib::TechLibrary;
use crate::Picos;

/// Precomputed per-edge **downstream-slack table**: for every fanout edge,
/// the length of the longest complete source-to-endpoint path through that
/// edge ending at each downstream flip-flop (including the endpoint setup
/// time), stored as a CSR of `(path_length, dff)` entries sorted by path
/// length.
///
/// With the table in hand, the statically reachable set for `(edge, extra)`
/// is a binary search: a flip-flop `f` is reachable iff its longest path
/// through the edge plus `extra` exceeds the clock period, so the qualifying
/// entries form a suffix of the edge's sorted slice. Path lengths are stored
/// **absolute** (not as slack against a particular clock) so a guardbanded
/// clone of the model ([`TimingModel::with_guardband`], which stretches only
/// `clock_period`) can reuse the same table and stay exact.
#[derive(Clone, Debug, Default)]
struct SlackTable {
    /// `offsets[e]..offsets[e + 1]` is edge `e`'s slice into `entries`.
    offsets: Vec<u32>,
    /// Per-edge `(longest path through edge ending at dff, dff)` pairs,
    /// sorted ascending by path length (ties by flip-flop id).
    entries: Vec<(Picos, DffId)>,
}

impl SlackTable {
    #[inline]
    fn edge_entries(&self, edge: EdgeId) -> &[(Picos, DffId)] {
        let lo = self.offsets[edge.index()] as usize;
        let hi = self.offsets[edge.index() + 1] as usize;
        &self.entries[lo..hi]
    }
}

/// The result of static timing analysis: per-edge delays, arrival times,
/// downstream max-path times, and the derived clock period.
///
/// The clock period is set to the design's critical path (the longest
/// register-to-register or register-to-output path, including flip-flop
/// setup), mirroring the paper's experimental setup ("the clock period of
/// the Ibex core is set to equal the length of the longest path in the
/// entire design", §VI-A).
#[derive(Clone, Debug)]
pub struct TimingModel {
    /// Per-net propagation delay of each of the net's fanout edges
    /// (driver cell delay under the net's fanout load, plus wire delay).
    net_delay: Vec<Picos>,
    /// Per-net latest arrival time at the net's origin, with flip-flop
    /// outputs and primary inputs launching at t = 0.
    arrival: Vec<Picos>,
    /// Per-net longest continuation from the net's origin to any timing
    /// endpoint (flip-flop D pin including setup, or primary output).
    maxdown: Vec<Picos>,
    /// Per-net topological index (producers strictly before consumers).
    topo_index: Vec<u32>,
    clock_period: Picos,
    setup: Picos,
    /// Lazily built downstream-slack table (see [`SlackTable`]); shared by
    /// guardbanded clones because it stores absolute path lengths.
    slack: OnceLock<SlackTable>,
}

impl TimingModel {
    /// Runs static timing analysis.
    ///
    /// Cost is linear in the number of edges.
    pub fn analyze(c: &Circuit, topo: &Topology, lib: &TechLibrary) -> Self {
        let n = c.num_nets();
        let mut net_delay = vec![0 as Picos; n];
        for (id, _) in c.nets() {
            let fanout = topo.fanouts(id).len();
            net_delay[id.index()] = lib.edge_delay(c, id, fanout);
        }

        // Topological index: sources at 0, gate outputs in eval order.
        let mut topo_index = vec![0u32; n];
        for (i, &g) in topo.eval_order().iter().enumerate() {
            topo_index[c.gate(g).output().index()] =
                u32::try_from(i + 1).expect("gate count fits u32");
        }

        // Forward pass: latest arrival at each net origin.
        let mut arrival = vec![0 as Picos; n];
        for &g in topo.eval_order() {
            let gate = c.gate(g);
            let t = gate
                .inputs()
                .iter()
                .map(|&inp| arrival[inp.index()] + net_delay[inp.index()])
                .max()
                .expect("gates have at least one input");
            arrival[gate.output().index()] = t;
        }

        // Backward pass: longest continuation to an endpoint.
        let setup = lib.setup();
        let mut maxdown = vec![0 as Picos; n];
        let continuation = |maxdown: &[Picos], consumer: Consumer| -> Picos {
            match consumer {
                Consumer::GatePin { gate, .. } => maxdown[c.gate(gate).output().index()],
                Consumer::DffD(_) => setup,
                Consumer::OutputBit { .. } => 0,
            }
        };
        for &g in topo.eval_order().iter().rev() {
            let out = c.gate(g).output();
            let m = topo
                .fanouts(out)
                .iter()
                .map(|e| net_delay[out.index()] + continuation(&maxdown, e.consumer))
                .max()
                .unwrap_or(0);
            maxdown[out.index()] = m;
        }
        for (id, net) in c.nets() {
            if !matches!(net.driver(), Driver::Gate(_)) {
                let m = topo
                    .fanouts(id)
                    .iter()
                    .map(|e| net_delay[id.index()] + continuation(&maxdown, e.consumer))
                    .max()
                    .unwrap_or(0);
                maxdown[id.index()] = m;
            }
        }

        let clock_period = (0..n)
            .map(|i| arrival[i] + maxdown[i])
            .max()
            .unwrap_or(0)
            .max(1);

        TimingModel {
            net_delay,
            arrival,
            maxdown,
            topo_index,
            clock_period,
            setup,
            slack: OnceLock::new(),
        }
    }

    /// The derived clock period (the design's critical path length, plus
    /// any guardband applied with [`TimingModel::with_guardband`]).
    #[inline]
    pub fn clock_period(&self) -> Picos {
        self.clock_period
    }

    /// Returns a copy of this model with the clock period stretched by
    /// `percent` beyond the critical path — a **timing guardband**, the
    /// circuit-level mitigation knob for small delay faults: extra slack
    /// absorbs larger `d` before any path misses the latch deadline.
    ///
    /// # Panics
    ///
    /// Panics if `percent` is negative (clocking faster than the critical
    /// path would break the fault-free design).
    pub fn with_guardband(&self, percent: f64) -> Self {
        assert!(percent >= 0.0, "guardband must not shrink the clock");
        let mut out = self.clone();
        out.clock_period = (self.clock_period as f64 * (1.0 + percent / 100.0)).round() as Picos;
        out
    }

    /// The flip-flop setup time of the library used for analysis.
    #[inline]
    pub fn setup(&self) -> Picos {
        self.setup
    }

    /// The propagation delay of every fanout edge of `net`.
    #[inline]
    pub fn net_delay(&self, net: NetId) -> Picos {
        self.net_delay[net.index()]
    }

    /// The propagation delay of a specific edge.
    #[inline]
    pub fn edge_delay(&self, topo: &Topology, edge: EdgeId) -> Picos {
        self.net_delay[topo.edge(edge).source.index()]
    }

    /// Latest arrival time at the origin of `net` (0 for sources).
    #[inline]
    pub fn arrival(&self, net: NetId) -> Picos {
        self.arrival[net.index()]
    }

    /// Length of the longest complete source-to-endpoint path that traverses
    /// `edge` (including endpoint setup when it ends at a flip-flop).
    ///
    /// A small delay fault of duration `d` on `edge` can statically reach at
    /// least one state element iff `path_through_edge(..) + d` exceeds the
    /// clock period; this is the cheap pre-filter used before the per-DFF
    /// query.
    pub fn path_through_edge(&self, c: &Circuit, topo: &Topology, edge: EdgeId) -> Picos {
        let e = topo.edge(edge);
        let pin = self.arrival[e.source.index()] + self.net_delay[e.source.index()];
        let cont = match e.consumer {
            Consumer::GatePin { gate, .. } => self.maxdown[c.gate(gate).output().index()],
            Consumer::DffD(_) => self.setup,
            Consumer::OutputBit { .. } => 0,
        };
        pin + cont
    }

    /// Extracts one critical path: the sequence of nets along a longest
    /// source-to-endpoint path (sources first), each with its arrival time.
    ///
    /// Useful for understanding what sets the clock period — on the studied
    /// core this is typically the chain through the register-file read mux,
    /// the ALU carry chain and the write-back mux.
    pub fn critical_path(&self, c: &Circuit, topo: &Topology) -> Vec<(NetId, Picos)> {
        // Find the endpoint edge achieving the critical path.
        let mut best: Option<(NetId, Picos)> = None;
        for i in 0..topo.edges().len() {
            let e = topo.edge(delayavf_netlist::EdgeId::from_index(i));
            let endpoint_cont = match e.consumer {
                Consumer::DffD(_) => self.setup,
                Consumer::OutputBit { .. } => 0,
                Consumer::GatePin { .. } => continue,
            };
            let len =
                self.arrival[e.source.index()] + self.net_delay[e.source.index()] + endpoint_cont;
            if best.is_none_or(|(_, b)| len > b) {
                best = Some((e.source, len));
            }
        }
        let Some((mut net, _)) = best else {
            return Vec::new();
        };
        // Walk backward through gates, always taking an input whose arrival
        // plus edge delay equals this net's arrival.
        let mut path = vec![(net, self.arrival[net.index()])];
        while let Driver::Gate(g) = c.net(net).driver() {
            let gate = c.gate(g);
            let target = self.arrival[net.index()];
            let pred = gate
                .inputs()
                .iter()
                .copied()
                .find(|&i| self.arrival[i.index()] + self.net_delay[i.index()] == target)
                .expect("some input achieves the arrival time");
            net = pred;
            path.push((net, self.arrival[net.index()]));
        }
        path.reverse();
        path
    }

    /// The **statically reachable set** (paper Definition 2): the flip-flops
    /// that terminate at least one path through `edge` whose length exceeds
    /// the clock period once an additional delay of `extra` is inserted at
    /// the edge.
    ///
    /// Answered from the precomputed downstream-slack table (built lazily on
    /// first use, shared by guardbanded clones): a binary search locates the
    /// suffix of the edge's path-sorted slice with `path + extra` beyond the
    /// clock period, replacing the per-query graph walk of
    /// [`TimingModel::statically_reachable_walk`], which is kept as the
    /// reference oracle.
    pub fn statically_reachable(
        &self,
        c: &Circuit,
        topo: &Topology,
        edge: EdgeId,
        extra: Picos,
    ) -> Vec<DffId> {
        let table = self.slack.get_or_init(|| self.build_slack_table(c, topo));
        let s = table.edge_entries(edge);
        let start = s.partition_point(|&(path, _)| path.saturating_add(extra) <= self.clock_period);
        let mut reachable: Vec<DffId> = s[start..].iter().map(|&(_, f)| f).collect();
        reachable.sort_unstable();
        reachable
    }

    /// The raw downstream-slack slice of `edge`: `(path_length, dff)` pairs
    /// for every flip-flop reachable through the edge, sorted ascending by
    /// the length of the longest complete source-to-endpoint path (ties by
    /// flip-flop id), with endpoint setup included. Path lengths are
    /// absolute, so two edges with identical slices behave identically under
    /// **every** extra delay and every guardband — the "same-slack" half of
    /// the fault-collapsing criterion compares exactly these slices.
    ///
    /// Builds the table lazily, like [`TimingModel::statically_reachable`].
    pub fn edge_slack_entries(
        &self,
        c: &Circuit,
        topo: &Topology,
        edge: EdgeId,
    ) -> &[(Picos, DffId)] {
        self.slack
            .get_or_init(|| self.build_slack_table(c, topo))
            .edge_entries(edge)
    }

    /// Builds the [`SlackTable`]: one backward dynamic-programming pass
    /// computing, per net, the longest continuation from the net's origin to
    /// each downstream flip-flop D pin (including setup), then expands it
    /// into per-edge absolute path lengths. Cost is linear in the total
    /// number of `(net, downstream flip-flop)` pairs — paid once, versus a
    /// graph walk per `(cycle, edge, extra)` query.
    fn build_slack_table(&self, c: &Circuit, topo: &Topology) -> SlackTable {
        let n = c.num_nets();
        // down[net]: (dff, longest continuation from net origin to the dff's
        // D pin, including the net's own edge delay and endpoint setup).
        let mut down: Vec<Vec<(DffId, Picos)>> = vec![Vec::new(); n];
        let fill = |down: &[Vec<(DffId, Picos)>], net: NetId| -> Vec<(DffId, Picos)> {
            let d = self.net_delay[net.index()];
            let mut best: HashMap<DffId, Picos> = HashMap::new();
            for e in topo.fanouts(net) {
                match e.consumer {
                    Consumer::DffD(f) => {
                        let t = d + self.setup;
                        best.entry(f).and_modify(|b| *b = (*b).max(t)).or_insert(t);
                    }
                    Consumer::GatePin { gate, .. } => {
                        let out = c.gate(gate).output();
                        for &(f, cont) in &down[out.index()] {
                            let t = d + cont;
                            best.entry(f).and_modify(|b| *b = (*b).max(t)).or_insert(t);
                        }
                    }
                    // Primary outputs are not state elements; they never
                    // enter the statically reachable set.
                    Consumer::OutputBit { .. } => {}
                }
            }
            let mut v: Vec<(DffId, Picos)> = best.into_iter().collect();
            v.sort_unstable();
            v
        };
        // Gate outputs in reverse eval order (consumers before producers),
        // then source nets (inputs, constants, flip-flop Q), whose fanout
        // continuations are all gate outputs or direct endpoints.
        for &g in topo.eval_order().iter().rev() {
            let out = c.gate(g).output();
            down[out.index()] = fill(&down, out);
        }
        for (id, net) in c.nets() {
            if !matches!(net.driver(), Driver::Gate(_)) {
                down[id.index()] = fill(&down, id);
            }
        }

        let num_edges = topo.edges().len();
        let mut offsets = Vec::with_capacity(num_edges + 1);
        let mut entries: Vec<(Picos, DffId)> = Vec::new();
        offsets.push(0u32);
        for i in 0..num_edges {
            let e = topo.edge(EdgeId::from_index(i));
            let base = self.arrival[e.source.index()] + self.net_delay[e.source.index()];
            let lo = entries.len();
            match e.consumer {
                Consumer::DffD(f) => entries.push((base + self.setup, f)),
                Consumer::GatePin { gate, .. } => {
                    let out = c.gate(gate).output();
                    entries.extend(down[out.index()].iter().map(|&(f, cont)| (base + cont, f)));
                }
                Consumer::OutputBit { .. } => {}
            }
            entries[lo..].sort_unstable();
            offsets.push(u32::try_from(entries.len()).expect("slack table fits u32"));
        }
        SlackTable { offsets, entries }
    }

    /// Reference implementation of [`TimingModel::statically_reachable`]:
    /// a longest-path relaxation over the fanout cone of the edge's sink,
    /// recomputed per query. Kept as the differential oracle for the
    /// downstream-slack table; cost is proportional to the affected cone.
    ///
    /// Arithmetic saturates like the table query's does (`saturating_add`),
    /// so extreme `extra` values pin to `Picos::MAX` instead of wrapping —
    /// the two implementations agree across the whole input domain.
    pub fn statically_reachable_walk(
        &self,
        c: &Circuit,
        topo: &Topology,
        edge: EdgeId,
        extra: Picos,
    ) -> Vec<DffId> {
        let e = topo.edge(edge);
        let pin_time = (self.arrival[e.source.index()] + self.net_delay[e.source.index()])
            .saturating_add(extra);
        let mut reachable = Vec::new();
        // Latest fault-affected arrival per net origin.
        let mut fault_time: HashMap<NetId, Picos> = HashMap::new();
        let mut heap: BinaryHeap<(Reverse<u32>, NetId)> = BinaryHeap::new();

        let visit = |consumer: Consumer,
                     time: Picos,
                     fault_time: &mut HashMap<NetId, Picos>,
                     heap: &mut BinaryHeap<(Reverse<u32>, NetId)>,
                     reachable: &mut Vec<DffId>| {
            match consumer {
                Consumer::DffD(f) => {
                    if time.saturating_add(self.setup) > self.clock_period {
                        reachable.push(f);
                    }
                }
                Consumer::GatePin { gate, .. } => {
                    let out = c.gate(gate).output();
                    match fault_time.entry(out) {
                        Entry::Vacant(v) => {
                            v.insert(time);
                            heap.push((Reverse(self.topo_index[out.index()]), out));
                        }
                        Entry::Occupied(mut o) => {
                            if *o.get() < time {
                                o.insert(time);
                            }
                        }
                    }
                }
                // Primary outputs are registered in the studied designs; a
                // late output is not a state-element error by itself.
                Consumer::OutputBit { .. } => {}
            }
        };

        visit(
            e.consumer,
            pin_time,
            &mut fault_time,
            &mut heap,
            &mut reachable,
        );
        while let Some((_, net)) = heap.pop() {
            let depart = fault_time[&net].saturating_add(self.net_delay[net.index()]);
            for eo in topo.fanouts(net) {
                visit(
                    eo.consumer,
                    depart,
                    &mut fault_time,
                    &mut heap,
                    &mut reachable,
                );
            }
        }
        reachable.sort_unstable();
        reachable.dedup();
        reachable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayavf_netlist::CircuitBuilder;

    /// Chain: in -> NOT -> NOT -> NOT -> DFF, plus a short side path
    /// in -> DFF2. Unit library: every gate 1000 ps.
    fn chain() -> (Circuit, Topology, TimingModel, Vec<EdgeId>) {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let n1 = b.not(a);
        let n2 = b.not(n1);
        let n3 = b.not(n2);
        let r = b.reg("deep", false);
        b.drive(r, n3);
        let r2 = b.reg("shallow", false);
        b.drive(r2, a);
        b.output("q", r.q());
        b.output("q2", r2.q());
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        let tm = TimingModel::analyze(&c, &topo, &TechLibrary::unit());
        let all_edges: Vec<EdgeId> = (0..topo.edges().len()).map(EdgeId::from_index).collect();
        (c, topo, tm, all_edges)
    }

    #[test]
    fn clock_period_is_longest_path() {
        let (_, _, tm, _) = chain();
        // Longest path: NOT -> NOT -> NOT each contributing 1000 ps on their
        // output edges; input and DFF-q edges are free under the unit lib
        // only for inputs (DFFs cost 1000). Critical: a->n1 (0) + n1 (1000)
        // + n2 (1000) + n3 (1000) = 3000.
        assert_eq!(tm.clock_period(), 3000);
    }

    #[test]
    fn arrival_times_accumulate_along_chain() {
        let (c, _, tm, _) = chain();
        // Gate outputs in creation order: n1, n2, n3.
        let mut arrivals: Vec<Picos> = c.gates().map(|(_, g)| tm.arrival(g.output())).collect();
        arrivals.sort_unstable();
        assert_eq!(arrivals, vec![0, 1000, 2000]);
    }

    #[test]
    fn path_through_edge_spans_full_paths() {
        let (c, topo, tm, edges) = chain();
        let deep = c.dffs().find(|(_, d)| d.name() == "deep").unwrap().0;
        // The edge into the deep DFF's D pin lies on the 3000 ps path.
        let e_into_deep = edges
            .iter()
            .copied()
            .find(|&e| matches!(topo.edge(e).consumer, Consumer::DffD(f) if f == deep))
            .unwrap();
        assert_eq!(tm.path_through_edge(&c, &topo, e_into_deep), 3000);
    }

    #[test]
    fn statically_reachable_depends_on_slack() {
        let (c, topo, tm, edges) = chain();
        let deep = c.dffs().find(|(_, d)| d.name() == "deep").unwrap().0;
        let shallow = c.dffs().find(|(_, d)| d.name() == "shallow").unwrap().0;
        // Edge from input `a` to the first NOT: full path 3000 = clock, so
        // zero slack; any positive extra delay makes `deep` reachable.
        let first = edges
            .iter()
            .copied()
            .find(|&e| {
                topo.edge(e).source == c.input_nets()[0]
                    && matches!(topo.edge(e).consumer, Consumer::GatePin { .. })
            })
            .unwrap();
        assert_eq!(tm.statically_reachable(&c, &topo, first, 0), vec![]);
        assert_eq!(tm.statically_reachable(&c, &topo, first, 1), vec![deep]);
        // Edge from input `a` directly to the shallow DFF has 3000 ps of
        // slack: small delays reach nothing, a delay > 3000 reaches it.
        let direct = edges
            .iter()
            .copied()
            .find(|&e| matches!(topo.edge(e).consumer, Consumer::DffD(f) if f == shallow))
            .unwrap();
        assert_eq!(tm.statically_reachable(&c, &topo, direct, 2999), vec![]);
        assert_eq!(
            tm.statically_reachable(&c, &topo, direct, 3001),
            vec![shallow]
        );
    }

    #[test]
    fn critical_path_walks_the_longest_chain() {
        let (c, topo, tm, _) = chain();
        let path = tm.critical_path(&c, &topo);
        // in -> n1 -> n2 -> n3: four nets, arrivals 0, 0, 1000, 2000.
        assert_eq!(path.len(), 4);
        let arrivals: Vec<_> = path.iter().map(|&(_, t)| t).collect();
        assert_eq!(arrivals, vec![0, 0, 1000, 2000]);
        // The path ends at a net whose full length equals the clock.
        let (last, t) = *path.last().unwrap();
        assert_eq!(t + tm.net_delay(last) + tm.setup(), tm.clock_period());
        // Sources first: the first net is not gate-driven.
        assert!(!matches!(c.net(path[0].0).driver(), Driver::Gate(_)));
    }

    #[test]
    fn guardband_stretches_the_clock_and_shrinks_reach() {
        let (c, topo, tm, edges) = chain();
        let relaxed = tm.with_guardband(50.0);
        assert_eq!(relaxed.clock_period(), 4500);
        // An extra delay that reaches a DFF at the tight clock is absorbed
        // by the guardband.
        let first = edges
            .iter()
            .copied()
            .find(|&e| {
                topo.edge(e).source == c.input_nets()[0]
                    && matches!(topo.edge(e).consumer, Consumer::GatePin { .. })
            })
            .unwrap();
        assert_eq!(tm.statically_reachable(&c, &topo, first, 100).len(), 1);
        assert!(relaxed
            .statically_reachable(&c, &topo, first, 100)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "guardband")]
    fn negative_guardband_panics() {
        let (_, _, tm, _) = chain();
        let _ = tm.with_guardband(-5.0);
    }

    #[test]
    fn slack_table_matches_the_walk_on_every_edge_and_extra() {
        let (c, topo, tm, edges) = chain();
        let extras: [Picos; 9] = [0, 1, 500, 999, 1000, 2999, 3000, 3001, 10_000];
        for &e in &edges {
            for extra in extras {
                assert_eq!(
                    tm.statically_reachable(&c, &topo, e, extra),
                    tm.statically_reachable_walk(&c, &topo, e, extra),
                    "edge {e:?} extra {extra}"
                );
            }
        }
        // A guardbanded clone shares the absolute-path table; the query
        // compares against the stretched clock and must still match the
        // walk exactly.
        let relaxed = tm.with_guardband(37.0);
        for &e in &edges {
            for extra in extras {
                assert_eq!(
                    relaxed.statically_reachable(&c, &topo, e, extra),
                    relaxed.statically_reachable_walk(&c, &topo, e, extra),
                    "guardbanded edge {e:?} extra {extra}"
                );
            }
        }
    }

    #[test]
    fn fanout_reconvergence_reaches_both_dffs() {
        // a -> x (XOR with itself is silly; use two sinks): x drives two
        // separate chains of different depth ending in two DFFs.
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.not(a);
        let long1 = b.not(x);
        let long2 = b.not(long1);
        let r_long = b.reg("long", false);
        b.drive(r_long, long2);
        let r_short = b.reg("short", false);
        b.drive(r_short, x);
        b.output("o1", r_long.q());
        b.output("o2", r_short.q());
        let c = b.finish().unwrap();
        let topo = Topology::new(&c);
        let tm = TimingModel::analyze(&c, &topo, &TechLibrary::unit());
        assert_eq!(tm.clock_period(), 3000);
        // The a->NOT edge feeds both DFFs; with a large extra delay both
        // become statically reachable through the same single fault.
        let e = (0..topo.edges().len())
            .map(EdgeId::from_index)
            .find(|&e| topo.edge(e).source == c.input_nets()[0])
            .unwrap();
        let reach = tm.statically_reachable(&c, &topo, e, 2500);
        assert_eq!(reach.len(), 2, "one SDF can statically reach many DFFs");
    }
}
