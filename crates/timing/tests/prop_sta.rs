//! Property tests for static timing analysis on random DAG circuits.

use delayavf_netlist::{CircuitBuilder, Consumer, EdgeId, GateKind, NetId, Topology, Word};
use delayavf_timing::{TechLibrary, TimingModel};
use proptest::prelude::*;

type GateSpec = (u8, u16, u16, u16);

fn random_fixture(gates: &[GateSpec]) -> (delayavf_netlist::Circuit, Topology, TimingModel) {
    let mut b = CircuitBuilder::new();
    let inputs = b.input_word("in", 6);
    let regs = b.reg_word("r", 6, 0);
    let mut nets: Vec<NetId> = inputs.bits().to_vec();
    nets.extend_from_slice(regs.q().bits());
    for &(kind, i0, i1, i2) in gates {
        let kinds = [
            GateKind::Buf,
            GateKind::Not,
            GateKind::And2,
            GateKind::Or2,
            GateKind::Nand2,
            GateKind::Nor2,
            GateKind::Xor2,
            GateKind::Xnor2,
            GateKind::Mux2,
        ];
        let k = kinds[usize::from(kind) % kinds.len()];
        let pick = |sel: u16| nets[usize::from(sel) % nets.len()];
        let ins: Vec<NetId> = [i0, i1, i2][..k.arity()].iter().map(|&s| pick(s)).collect();
        nets.push(b.gate(k, &ins));
    }
    let d: Word = (0..6).map(|i| nets[nets.len() - 1 - i]).collect();
    b.drive_word(&regs, &d);
    b.output_word("o", &regs.q());
    let c = b.finish().expect("acyclic");
    let topo = Topology::new(&c);
    let timing = TimingModel::analyze(&c, &topo, &TechLibrary::nangate45_like());
    (c, topo, timing)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_path_fits_the_self_derived_clock(
        gates in prop::collection::vec(any::<GateSpec>(), 5..50),
    ) {
        let (c, topo, timing) = random_fixture(&gates);
        for i in 0..topo.edges().len() {
            let e = EdgeId::from_index(i);
            prop_assert!(
                timing.path_through_edge(&c, &topo, e) <= timing.clock_period(),
                "edge {e} exceeds the critical-path clock"
            );
        }
        // The critical path is actually achieved by some edge.
        let max = (0..topo.edges().len())
            .map(|i| timing.path_through_edge(&c, &topo, EdgeId::from_index(i)))
            .max()
            .unwrap();
        prop_assert_eq!(max, timing.clock_period());
    }

    #[test]
    fn static_reach_is_monotone_in_delay(
        gates in prop::collection::vec(any::<GateSpec>(), 5..40),
        edge_sel: u16,
    ) {
        let (c, topo, timing) = random_fixture(&gates);
        let e = EdgeId::from_index(usize::from(edge_sel) % topo.edges().len());
        let clock = timing.clock_period();
        let mut prev: Vec<_> = Vec::new();
        for frac in [0u64, 1, 2, 4, 8] {
            let d = clock * frac / 8;
            let cur = timing.statically_reachable(&c, &topo, e, d);
            // Monotonicity: a longer delay can only add reachable elements.
            prop_assert!(
                prev.iter().all(|x| cur.contains(x)),
                "reach shrank between delays"
            );
            prev = cur;
        }
    }

    #[test]
    fn zero_delay_reaches_nothing(
        gates in prop::collection::vec(any::<GateSpec>(), 5..40),
        edge_sel: u16,
    ) {
        let (c, topo, timing) = random_fixture(&gates);
        let e = EdgeId::from_index(usize::from(edge_sel) % topo.edges().len());
        prop_assert!(timing.statically_reachable(&c, &topo, e, 0).is_empty());
    }

    #[test]
    fn walk_oracle_matches_the_csr_table_everywhere(
        gates in prop::collection::vec(any::<GateSpec>(), 5..40),
        extra_sel: u16,
    ) {
        // Direct differential test of the two statically-reachable
        // implementations on every edge, probing the decision boundaries:
        // the exact per-edge slack (zero-slack extras: slack and slack ± 1),
        // the guardband edge (same probes against a stretched clock), and
        // the saturation regime (extras near Picos::MAX, where the walk
        // used to overflow while the table saturated).
        let (c, topo, timing) = random_fixture(&gates);
        let clock = timing.clock_period();
        let relaxed = timing.with_guardband(25.0);
        for i in 0..topo.edges().len() {
            let e = EdgeId::from_index(i);
            for tm in [&timing, &relaxed] {
                let slack = tm.clock_period() - timing.path_through_edge(&c, &topo, e);
                let mut extras = vec![
                    0,
                    slack.saturating_sub(1),
                    slack,
                    slack + 1,
                    tm.clock_period(),
                    tm.clock_period() + 1,
                    u64::MAX - 1,
                    u64::MAX,
                ];
                extras.push(u64::from(extra_sel) * clock / 4096);
                for extra in extras {
                    prop_assert_eq!(
                        tm.statically_reachable(&c, &topo, e, extra),
                        tm.statically_reachable_walk(&c, &topo, e, extra),
                        "edge {} extra {} clock {}", e, extra, tm.clock_period()
                    );
                }
            }
        }
    }

    #[test]
    fn above_clock_delay_reaches_every_downstream_dff(
        gates in prop::collection::vec(any::<GateSpec>(), 5..40),
        edge_sel: u16,
    ) {
        let (c, topo, timing) = random_fixture(&gates);
        let e = EdgeId::from_index(usize::from(edge_sel) % topo.edges().len());
        let reach = timing.statically_reachable(&c, &topo, e, timing.clock_period() + 1);
        // With d > clock, every DFF topologically downstream of the edge's
        // sink is statically reachable.
        let edge = topo.edge(e);
        let expect = match edge.consumer {
            Consumer::DffD(f) => vec![f],
            Consumer::GatePin { gate, .. } => {
                topo.downstream_dffs(&c, c.gate(gate).output())
                    .into_iter()
                    .chain(std::iter::empty())
                    .collect()
            }
            Consumer::OutputBit { .. } => vec![],
        };
        let mut expect = expect;
        // A gate-pin fault also reaches DFFs fed directly by that gate's
        // output; downstream_dffs already covers those. For a DffD fault
        // only that DFF is affected.
        expect.sort_unstable();
        prop_assert_eq!(reach, expect);
    }
}
