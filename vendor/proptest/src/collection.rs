//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Vec`s whose length is drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Builds a strategy for vectors of `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "vec size range must be non-empty");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.start..self.size.end);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
