//! `any::<T>()` — canonical full-range strategies for primitive types
//! and tuples of them.

use std::fmt::Debug;
use std::marker::PhantomData;

use rand::{Rng, Standard};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + Debug {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy for one primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyValue<T>(PhantomData<T>);

impl<T: Standard + Debug> Strategy for AnyValue<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_primitive {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyValue<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyValue(PhantomData)
            }
        }
    )*};
}

impl_arbitrary_primitive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

macro_rules! impl_arbitrary_tuple {
    ($($T:ident),+) => {
        impl<$($T: Arbitrary),+> Arbitrary for ($($T,)+) {
            type Strategy = ($($T::Strategy,)+);
            fn arbitrary() -> Self::Strategy {
                ($($T::arbitrary(),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);
impl_arbitrary_tuple!(A, B, C, D, E);
impl_arbitrary_tuple!(A, B, C, D, E, F);
