//! Value-generation strategies (sampling only — no shrinking).

use std::fmt::Debug;
use std::ops::Range;

use rand::Rng;

use crate::test_runner::TestRng;

/// How many times a filtering strategy retries before giving up. Mirrors
/// upstream's local-reject limit; hitting it means the filter is far too
/// selective for property testing to be meaningful.
const MAX_LOCAL_REJECTS: usize = 65_536;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: Debug;

    /// Draws one value. Filtering strategies retry internally.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keeps only values for which `f` returns `true`.
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason: reason.into(),
            f,
        }
    }

    /// Maps values through `f`, re-sampling whenever it returns `None`.
    fn prop_filter_map<O, F>(self, reason: impl Into<String>, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            source: self,
            reason: reason.into(),
            f,
        }
    }

    /// Erases the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, so heterogeneous strategies can share a box.
trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among several boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_LOCAL_REJECTS {
            let v = self.source.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected every sample: {}", self.reason);
    }
}

/// Output of [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    source: S,
    reason: String,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_LOCAL_REJECTS {
            if let Some(v) = (self.f)(self.source.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected every sample: {}", self.reason);
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::SampleUniform + Copy + Debug,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
