//! Deterministic case runner.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// RNG used for sampling (fixed-seed, so every run is identical).
pub type TestRng = StdRng;

/// Runner configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property failed on this input.
    Fail(String),
    /// The input did not satisfy a `prop_assume!` and must be re-drawn.
    Reject(String),
}

impl TestCaseError {
    /// A failed case.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (assumption-violating) case.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Runs a property against many sampled inputs.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

/// Upstream's default cap on `prop_assume!` rejections per property.
const MAX_GLOBAL_REJECTS: u32 = 4096;

impl TestRunner {
    /// Builds a runner. Sampling is seeded with a fixed constant so failures
    /// reproduce exactly on every run (this stand-in has no persistence
    /// files; pin interesting cases as explicit `#[test]`s).
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(0x5eed_cafe_f00d_d00d),
        }
    }

    /// Runs `test` against `config.cases` accepted samples of `strategy`,
    /// panicking with the offending input on the first failure.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < self.config.cases {
            let value = strategy.sample(&mut self.rng);
            let shown = format!("{value:?}");
            let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
            match outcome {
                Ok(Ok(())) => case += 1,
                Ok(Err(TestCaseError::Reject(_))) => {
                    rejects += 1;
                    assert!(
                        rejects <= MAX_GLOBAL_REJECTS,
                        "too many prop_assume! rejections ({MAX_GLOBAL_REJECTS}); \
                         the assumption is too selective"
                    );
                }
                Ok(Err(TestCaseError::Fail(reason))) => {
                    panic!("proptest case failed: {reason}\n  input: {shown}");
                }
                Err(payload) => {
                    let reason = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    panic!("proptest case panicked: {reason}\n  input: {shown}");
                }
            }
        }
    }
}
