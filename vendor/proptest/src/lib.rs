//! Workspace-local, dependency-free stand-in for the subset of the
//! `proptest` crate this repository uses. The build environment has no
//! access to a crates.io registry, so the workspace resolves `proptest`
//! to this crate via a path dependency.
//!
//! Supported surface: the `proptest!` macro (with optional
//! `#![proptest_config(..)]` header and both `name: Type` and
//! `name in strategy` parameters), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`/`prop_assume!`/`prop_oneof!`, integer `Range`
//! strategies, `any::<T>()` for primitives and tuples, `Just`, tuple
//! strategies, `prop_map`/`prop_filter`/`prop_filter_map`/`boxed`,
//! `prop::collection::vec`, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! original sampled input) and no failure-persistence files (regression
//! cases worth pinning are written as explicit `#[test]`s instead). Case
//! generation is fully deterministic: every run samples the same inputs.

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod test_runner;

/// Canonical prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions that run a body against many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: expands each `fn` item inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_parse_params!(($cfg) ($($params)*) () () $body);
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Internal: tt-muncher turning the parameter list into (patterns, strategies).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_parse_params {
    // Terminal: run the collected strategies against the body.
    (($cfg:expr) () ($($pat:ident)*) ($(($strat:expr))*) $body:block) => {{
        let __config: $crate::test_runner::ProptestConfig = $cfg;
        let __strategy = ($($strat,)*);
        let mut __runner = $crate::test_runner::TestRunner::new(__config);
        __runner.run(&__strategy, |($($pat,)*)| {
            let _ = $body;
            ::core::result::Result::Ok(())
        });
    }};
    // `name: Type` — sampled with any::<Type>().
    (($cfg:expr) ($name:ident : $ty:ty , $($rest:tt)*) ($($pat:ident)*) ($($strat:tt)*) $body:block) => {
        $crate::__proptest_parse_params!(
            ($cfg) ($($rest)*) ($($pat)* $name) ($($strat)* (($crate::arbitrary::any::<$ty>()))) $body)
    };
    (($cfg:expr) ($name:ident : $ty:ty) ($($pat:ident)*) ($($strat:tt)*) $body:block) => {
        $crate::__proptest_parse_params!(
            ($cfg) () ($($pat)* $name) ($($strat)* (($crate::arbitrary::any::<$ty>()))) $body)
    };
    // `name in strategy-expr`.
    (($cfg:expr) ($name:ident in $s:expr , $($rest:tt)*) ($($pat:ident)*) ($($strat:tt)*) $body:block) => {
        $crate::__proptest_parse_params!(
            ($cfg) ($($rest)*) ($($pat)* $name) ($($strat)* (($s))) $body)
    };
    (($cfg:expr) ($name:ident in $s:expr) ($($pat:ident)*) ($($strat:tt)*) $body:block) => {
        $crate::__proptest_parse_params!(
            ($cfg) () ($($pat)* $name) ($($strat)* (($s))) $body)
    };
}

/// Asserts a condition inside a `proptest!` body (fails the case, not the
/// whole process, so the runner can report the sampled input).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)*);
    }};
}

/// Discards the current case (re-sampled without counting toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between heterogeneous strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($item)),+
        ])
    };
}
