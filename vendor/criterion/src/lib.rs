//! Workspace-local, dependency-free stand-in for the subset of the
//! `criterion` crate this repository uses. The build environment has no
//! access to a crates.io registry, so the workspace resolves `criterion`
//! to this crate via a path dependency.
//!
//! It is a wall-clock micro-harness, not a statistics engine: each
//! `bench_function` runs one warm-up pass, then times `sample_size`
//! batches and prints the per-iteration mean and min. That is enough for
//! the serial-vs-parallel comparisons the repo's docs quote; it makes no
//! attempt at outlier rejection or regression tracking.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering (subset of `criterion::black_box`).
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How batch setup cost is amortized; the stand-in times each routine call
/// individually, so the variants only exist to keep call sites compiling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    #[default]
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` asks real criterion to run every bench
        // once as a smoke test instead of collecting samples; honor the
        // same flag so CI can exercise the bench targets cheaply.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` and prints a one-line summary. In `--test` mode the
    /// routine runs exactly once (the untimed warm-up pass) and only a
    /// pass/fail line is printed.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: if self.test_mode { 0 } else { self.sample_size },
            total: Duration::ZERO,
            min: Duration::MAX,
            iters: 0,
        };
        f(&mut b);
        if self.test_mode {
            println!("bench {id:<40} ... ok (smoke test)");
            return self;
        }
        let mean = if b.iters > 0 {
            b.total / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "bench {id:<40} mean {mean:>12.3?}  min {min:>12.3?}  ({iters} iters)",
            min = b.min,
            iters = b.iters,
        );
        self
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher {
    fn record(&mut self, elapsed: Duration) {
        self.total += elapsed;
        self.min = self.min.min(elapsed);
        self.iters += 1;
    }

    /// Times `routine` for the configured number of samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.record(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.record(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
