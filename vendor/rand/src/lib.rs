//! Workspace-local, dependency-free stand-in for the subset of the `rand`
//! crate this repository uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, `seq::SliceRandom`). The build
//! environment has no access to a crates.io registry, so the workspace
//! resolves `rand` to this crate via a path dependency.
//!
//! Determinism is the only contract the repository relies on: every seeded
//! sequence is a pure function of the seed. The generator is SplitMix64
//! (Steele et al., "Fast splittable pseudorandom number generators"), which
//! passes BigCrush on its own and is more than adequate for sampling
//! injection sites. The streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`, which is fine: nothing in the repo pins exact sampled values,
//! only that equal seeds give equal samples.

use std::ops::Range;

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its full uniform range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open, panics when empty).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 high-quality mantissa bits, exactly as upstream rand does it.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their full range (upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a half-open `Range`.
pub trait SampleUniform: Sized {
    /// Draws one value in `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                // Widen through u128 so signed spans and u64::MAX-wide spans
                // cannot overflow; modulo bias is < 2^-64 for every span the
                // repo uses and irrelevant to its determinism contract.
                let span = (range.end as i128 - range.start as i128) as u128;
                let off = ((rng.next_u64() as u128) % span) as i128;
                (range.start as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // One warm-up step decorrelates small adjacent seeds.
            let mut rng = StdRng { state };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::Rng;

    /// Iterator over elements picked by [`SliceRandom::choose_multiple`].
    pub struct SliceChooseIter<'a, T> {
        slice: &'a [T],
        indices: std::vec::IntoIter<usize>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;

        fn next(&mut self) -> Option<&'a T> {
            self.indices.next().map(|i| &self.slice[i])
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            self.indices.size_hint()
        }
    }

    impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

    /// Random sampling on slices (subset of upstream's trait).
    pub trait SliceRandom {
        /// Element type of the underlying slice.
        type Item;

        /// Picks `amount` distinct elements uniformly without replacement
        /// (all of them when the slice is shorter), in random order.
        fn choose_multiple<R: Rng>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;

        /// Picks one element uniformly, or `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index permutation: uniform
            // without replacement, deterministic under the rng stream.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + rng.gen_range(0..self.len() - i);
                indices.swap(i, j);
            }
            indices.truncate(amount);
            SliceChooseIter {
                slice: self,
                indices: indices.into_iter(),
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_for_signed_and_unsigned() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3u64..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-2048i32..2048);
            assert!((-2048..2048).contains(&i));
            let z = rng.gen_range(5usize..6);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&heads), "got {heads}");
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let items: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let picked: Vec<u32> = items.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "no duplicates");
        let mut rng2 = StdRng::seed_from_u64(3);
        let again: Vec<u32> = items.choose_multiple(&mut rng2, 10).copied().collect();
        assert_eq!(picked, again, "deterministic under seed");
        assert_eq!(items.choose_multiple(&mut rng, 500).count(), 100);
    }
}
