//! Every workload (the paper's five plus the extension kernels) runs on the
//! gate-level core and produces its reference exit code.

use delayavf_netlist::Topology;
use delayavf_rvcore::{build_core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_sim::{CycleSim, StopReason};
use delayavf_workloads::{suite_extended, Scale};

#[test]
fn all_tiny_workloads_run_on_the_gate_level_core() {
    let core = build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    for w in suite_extended(Scale::Tiny) {
        let p = w.assemble().expect("assembles");
        let mut env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &p);
        let mut sim = CycleSim::new(&core.circuit, &topo);
        let summary = sim.run(&mut env, w.max_cycles);
        assert_eq!(summary.reason, StopReason::Halted, "{} halts", w.kernel);
        assert_eq!(
            env.exit_code(),
            Some(w.expected_exit),
            "{} exits with its reference value",
            w.kernel
        );
    }
}

#[test]
fn fast_adder_core_reproduces_every_tiny_workload() {
    let core = build_core(CoreConfig {
        fast_adder: true,
        ..CoreConfig::default()
    });
    let topo = Topology::new(&core.circuit);
    for w in suite_extended(Scale::Tiny) {
        let p = w.assemble().expect("assembles");
        let mut env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &p);
        let mut sim = CycleSim::new(&core.circuit, &topo);
        sim.run(&mut env, w.max_cycles);
        assert_eq!(env.exit_code(), Some(w.expected_exit), "{}", w.kernel);
    }
}
