//! The incremental divergence-cone replay engine's headline guarantee,
//! checked on the real gate-level core: for every core variant and
//! workload, campaigns run with the incremental engine return results —
//! per-injection failure classes included — bit-for-bit identical to the
//! exact full-replay baseline, at a fraction of the gate evaluations.

use delayavf::{
    delay_avf_campaign_records, savf_campaign_with_stats, savf_per_bit_campaign,
    spatial_double_strike_campaign, valid_cycles, InjectorStats, ReplayOptions,
};
use delayavf_bench::{Harness, Opts, StructureSel};
use delayavf_netlist::DffId;
use delayavf_workloads::Kernel;

/// The counters both engines share. The mode-specific counters
/// (`gates_evaluated`, `incremental_replays`, `full_replay_fallbacks`) are
/// deliberately excluded: they describe *how* the work was done, not *what*
/// was computed.
fn common_counters(s: &InjectorStats) -> [u64; 6] {
    [
        s.static_filtered,
        s.toggle_filtered,
        s.event_sims,
        s.replays,
        s.replay_cache_hits,
        s.replay_cycles,
    ]
}

#[test]
fn every_core_variant_and_kernel_matches_the_full_replay_baseline() {
    let mut h = Harness::build();
    let opts = Opts::quick();
    for sel in [
        StructureSel::Plain("alu"),
        StructureSel::Ecc("regfile"),
        StructureSel::Fast("alu"),
    ] {
        for kernel in [Kernel::Libfibcall, Kernel::Libstrstr] {
            let variant = h.variant_mut(sel);
            let golden = variant.golden(kernel, &opts);
            let edges = variant.edges(sel.name(), &opts);
            let run = |incremental: bool| {
                delay_avf_campaign_records(
                    &variant.core.circuit,
                    &variant.topo,
                    &variant.timing,
                    &golden,
                    &edges,
                    0.9,
                    ReplayOptions::new(opts.due_slack, 1).with_incremental(incremental),
                )
            };
            let (inc_row, inc_records) = run(true);
            let (full_row, full_records) = run(false);
            let label = format!("{} under {kernel}", sel.label());
            assert_eq!(inc_row, full_row, "campaign row for {label}");
            assert_eq!(
                inc_records, full_records,
                "per-injection outcomes (incl. FailureClass) for {label}"
            );
        }
    }
}

#[test]
fn savf_stats_are_mode_and_thread_invariant_where_they_must_be() {
    let mut h = Harness::build();
    let opts = Opts::quick();
    let sel = StructureSel::Plain("alu");
    let variant = h.variant_mut(sel);
    let golden = variant.golden(Kernel::Libfibcall, &opts);
    let dffs: Vec<DffId> = variant.dffs("lsu", &opts);

    let run = |incremental: bool, threads: usize| {
        savf_campaign_with_stats(
            &variant.core.circuit,
            &variant.topo,
            &variant.timing,
            &golden,
            &dffs,
            ReplayOptions::new(opts.due_slack, threads).with_incremental(incremental),
        )
    };
    let (inc1, inc1_stats) = run(true, 1);
    let (inc4, inc4_stats) = run(true, 4);
    let (full1, full1_stats) = run(false, 1);
    let (full4, full4_stats) = run(false, 4);

    // Within a mode the merged counters are thread-count invariant in full.
    assert_eq!(inc1, inc4, "incremental results, 1 vs 4 threads");
    assert_eq!(
        inc1_stats, inc4_stats,
        "incremental counters, 1 vs 4 threads"
    );
    assert_eq!(full1, full4, "full-replay results, 1 vs 4 threads");
    assert_eq!(
        full1_stats, full4_stats,
        "full-replay counters, 1 vs 4 threads"
    );

    // Across modes the results and the shared counters agree exactly.
    assert_eq!(inc1, full1, "sAVF result, incremental vs full");
    assert_eq!(
        common_counters(&inc1_stats),
        common_counters(&full1_stats),
        "shared counters, incremental vs full"
    );

    // The mode-specific counters say which engine actually ran.
    assert_eq!(full1_stats.gates_evaluated, 0);
    assert_eq!(full1_stats.incremental_replays, 0);
    assert_eq!(full1_stats.full_replay_fallbacks, 0);
    assert_eq!(
        inc1_stats.incremental_replays + inc1_stats.lanes_occupied,
        inc1_stats.replays,
        "every cache miss went through the incremental or the batch engine"
    );
    assert!(inc1_stats.replays > 0, "the campaign did real work");

    // At lanes = 1 the batch engine stands down and the original invariant
    // holds: every cache miss is an incremental scalar replay.
    let (scalar, scalar_stats) = savf_campaign_with_stats(
        &variant.core.circuit,
        &variant.topo,
        &variant.timing,
        &golden,
        &dffs,
        ReplayOptions::new(opts.due_slack, 1).with_lanes(1),
    );
    assert_eq!(scalar, inc1, "sAVF result, lanes 1 vs 64");
    assert_eq!(scalar_stats.batched_replays, 0);
    assert_eq!(
        scalar_stats.incremental_replays, scalar_stats.replays,
        "every cache miss went through the incremental engine at lanes = 1"
    );
    // The whole point: far fewer gate evaluations than a full replay's
    // every-gate-every-cycle schedule.
    let full_work = inc1_stats.replay_cycles * variant.core.circuit.num_gates() as u64;
    println!(
        "incremental gate evaluations: {} of {} full-replay bound ({:.2}%)",
        inc1_stats.gates_evaluated,
        full_work,
        100.0 * inc1_stats.gates_evaluated as f64 / full_work.max(1) as f64
    );
    assert!(
        inc1_stats.gates_evaluated < full_work / 2,
        "incremental work {} should be well under the full-replay bound {}",
        inc1_stats.gates_evaluated,
        full_work
    );
}

#[test]
fn per_bit_and_double_strike_campaigns_match_across_modes() {
    let mut h = Harness::build();
    let opts = Opts::quick();
    let variant = h.variant_mut(StructureSel::Plain("alu"));
    let golden = variant.golden(Kernel::Libstrstr, &opts);
    assert!(!valid_cycles(&golden).is_empty());
    let dffs: Vec<DffId> = variant.dffs("control", &opts);

    for threads in [1, 4] {
        let inc = ReplayOptions::new(opts.due_slack, threads);
        let full = inc.with_incremental(false);
        let per_bit_inc = savf_per_bit_campaign(
            &variant.core.circuit,
            &variant.topo,
            &variant.timing,
            &golden,
            &dffs,
            inc,
        );
        let per_bit_full = savf_per_bit_campaign(
            &variant.core.circuit,
            &variant.topo,
            &variant.timing,
            &golden,
            &dffs,
            full,
        );
        assert_eq!(per_bit_inc, per_bit_full, "per-bit sAVF, {threads} threads");

        let spatial_inc = spatial_double_strike_campaign(
            &variant.core.circuit,
            &variant.topo,
            &variant.timing,
            &golden,
            &dffs,
            inc,
        );
        let spatial_full = spatial_double_strike_campaign(
            &variant.core.circuit,
            &variant.topo,
            &variant.timing,
            &golden,
            &dffs,
            full,
        );
        assert_eq!(
            spatial_inc, spatial_full,
            "double-strike sAVF, {threads} threads"
        );
    }
}
