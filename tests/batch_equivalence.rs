//! Differential gate for the bit-parallel batch replay layer, on the real
//! gate-level core: campaigns run at every lane width return bit-for-bit
//! identical results, and at the [`Injector`] level a batched prefill
//! produces exactly the scalar engine's failure classes under every
//! combination of the early-exit and incremental knobs.

use delayavf::{
    delay_avf_campaign_records, prepare_golden_seeded, sample_edges, savf_per_bit_campaign,
    spatial_double_strike_campaign, valid_cycles, FailureClass, Injector, ReplayOptions,
};
use delayavf_netlist::{DffId, Topology};
use delayavf_rvcore::{Core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_timing::{TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

struct Setup {
    core: Core,
    topo: Topology,
    timing: TimingModel,
    golden: delayavf::GoldenRun<MemEnv>,
}

fn setup() -> Setup {
    let core = delayavf_rvcore::build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
    let w = Kernel::Libfibcall.build(Scale::Tiny);
    let p = w.assemble().expect("workload assembles");
    let env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &p);
    let golden = prepare_golden_seeded(&core.circuit, &topo, &env, w.max_cycles, 8, 23);
    assert!(golden.trace.halted());
    Setup {
        core,
        topo,
        timing,
        golden,
    }
}

/// A mixed bag of strike scenarios over a structure's bits: singletons,
/// adjacent pairs, and one wide set — enough to fill partial batches and
/// to collide with cached entries.
fn scenarios(dffs: &[DffId]) -> Vec<Vec<DffId>> {
    let mut sets: Vec<Vec<DffId>> = dffs.iter().map(|&d| vec![d]).collect();
    sets.extend(dffs.windows(2).map(|p| p.to_vec()));
    sets.push(dffs.to_vec());
    sets
}

/// Every campaign that exposes per-injection results is lane-width
/// invariant: 1 (pure scalar), 2 (mostly-empty words) and 64 (full words)
/// agree bit for bit.
#[test]
fn campaigns_are_lane_width_invariant_on_the_real_core() {
    let s = setup();
    // Decoder edges: delay faults on this structure actually latch wrong
    // values on the tiny workload, so the lane comparison is not vacuous.
    let edges = sample_edges(
        &s.topo.structure_edges(&s.core.circuit, "decoder").unwrap(),
        24,
        23,
    );
    let dffs: Vec<DffId> = s.core.circuit.structure("control").unwrap().dffs().to_vec();

    let run = |lanes: usize| {
        let opts = ReplayOptions::new(500, 1).with_lanes(lanes);
        (
            delay_avf_campaign_records(
                &s.core.circuit,
                &s.topo,
                &s.timing,
                &s.golden,
                &edges,
                0.9,
                opts,
            ),
            savf_per_bit_campaign(&s.core.circuit, &s.topo, &s.timing, &s.golden, &dffs, opts),
            spatial_double_strike_campaign(
                &s.core.circuit,
                &s.topo,
                &s.timing,
                &s.golden,
                &dffs,
                opts,
            ),
        )
    };
    let (scalar_records, scalar_per_bit, scalar_spatial) = run(1);
    for lanes in [2, 64] {
        let (records, per_bit, spatial) = run(lanes);
        assert_eq!(records.0, scalar_records.0, "records row, lanes = {lanes}");
        assert_eq!(
            records.1, scalar_records.1,
            "per-injection outcomes (incl. FailureClass), lanes = {lanes}"
        );
        assert_eq!(per_bit, scalar_per_bit, "per-bit sAVF, lanes = {lanes}");
        assert_eq!(spatial, scalar_spatial, "double strikes, lanes = {lanes}");
    }
}

/// The injector-level differential, with the campaign layer out of the
/// picture: a batched prefill followed by cache lookups yields exactly the
/// scalar failure classes, under all four combinations of the early-exit
/// and incremental knobs — including the pure full-replay configuration
/// where every batch continuation materializes complete state.
#[test]
fn prefilled_failure_classes_match_scalar_under_every_knob_combination() {
    let s = setup();
    let dffs: Vec<DffId> = s
        .core
        .circuit
        .structure("lsu")
        .unwrap()
        .dffs()
        .iter()
        .copied()
        .take(10)
        .collect();
    let sets = scenarios(&dffs);
    let boundaries: Vec<u64> = valid_cycles(&s.golden).into_iter().take(4).collect();
    assert!(!boundaries.is_empty(), "the golden run sampled cycles");

    for early_exit in [true, false] {
        for incremental in [true, false] {
            let mut classes: Vec<Vec<FailureClass>> = Vec::new();
            for lanes in [1usize, 64] {
                let mut injector =
                    Injector::new(&s.core.circuit, &s.topo, &s.timing, &s.golden, 500);
                injector.set_early_exit(early_exit);
                injector.set_incremental(incremental);
                injector.set_lanes(lanes);
                let mut got = Vec::new();
                for &boundary in &boundaries {
                    injector.prefill_failures(boundary, sets.iter().cloned());
                    for set in &sets {
                        got.push(injector.group_failure(boundary, set));
                    }
                }
                if lanes == 1 {
                    assert_eq!(injector.stats.batched_replays, 0);
                } else {
                    assert!(
                        injector.stats.batched_replays > 0,
                        "wide lanes batch (early_exit={early_exit}, incremental={incremental})"
                    );
                }
                classes.push(got);
            }
            assert_eq!(
                classes[0], classes[1],
                "failure classes, lanes 1 vs 64 (early_exit={early_exit}, incremental={incremental})"
            );
        }
    }
}
