//! Differential test of the timing-aware simulator against an independent
//! oracle.
//!
//! With a delay far larger than the clock period, a faulted fanout edge can
//! never deliver an event before the latch deadline, so the cycle behaves
//! exactly as if that edge were frozen at its previous settled value. That
//! frozen-edge semantics is easy to compute with a plain zero-delay settle
//! — giving an implementation-independent oracle for the event-driven
//! simulator's fault handling.

use delayavf::prepare_golden_seeded;
use delayavf_netlist::{Circuit, Consumer, EdgeId, GateId, Topology};
use delayavf_rvcore::{build_core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_sim::{settle, EventSim, FaultSpec};
use delayavf_timing::{TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

/// Zero-delay settle with one gate input pin (or flip-flop D pin) frozen to
/// `frozen_val`; returns the latched flip-flop values.
fn frozen_edge_latch(
    c: &Circuit,
    topo: &Topology,
    state: &[bool],
    inputs: &[u64],
    edge: EdgeId,
    frozen_val: bool,
) -> Vec<bool> {
    let frozen = topo.edge(edge);
    let mut vals = vec![false; c.num_nets()];
    for (id, net) in c.nets() {
        if let delayavf_netlist::Driver::Const(v) = net.driver() {
            vals[id.index()] = v;
        }
    }
    for (port, &word) in c.input_ports().iter().zip(inputs) {
        for (bit, &net) in port.nets().iter().enumerate() {
            vals[net.index()] = (word >> bit) & 1 == 1;
        }
    }
    for (id, dff) in c.dffs() {
        vals[dff.q().index()] = state[id.index()];
    }
    let pin_is_frozen = |g: GateId, k: usize| matches!(frozen.consumer, Consumer::GatePin { gate, pin } if gate == g && usize::from(pin) == k);
    for &g in topo.eval_order() {
        let gate = c.gate(g);
        let mut ins = [false; 3];
        for (k, &inp) in gate.inputs().iter().enumerate() {
            ins[k] = if pin_is_frozen(g, k) {
                frozen_val
            } else {
                vals[inp.index()]
            };
        }
        let out = gate.kind().eval(&ins[..gate.kind().arity()]);
        vals[gate.output().index()] = out;
    }
    c.dffs()
        .map(|(id, dff)| {
            if matches!(frozen.consumer, Consumer::DffD(f) if f == id) {
                frozen_val
            } else {
                vals[dff.d().index()]
            }
        })
        .collect()
}

#[test]
fn event_sim_matches_frozen_edge_oracle_at_huge_delay() {
    let core = build_core(CoreConfig::default());
    let c = &core.circuit;
    let topo = Topology::new(c);
    let timing = TimingModel::analyze(c, &topo, &TechLibrary::nangate45_like());
    let w = Kernel::Libstrstr.build(Scale::Tiny);
    let p = w.assemble().unwrap();
    let env = MemEnv::new(c, DEFAULT_RAM_BYTES, &p);
    let golden = prepare_golden_seeded(c, &topo, &env, w.max_cycles, 4, 9);
    let d = timing.clock_period() * 10;

    let mut checked = 0usize;
    let mut erring = 0usize;
    let mut ev = EventSim::new(c, &topo, &timing);
    for &cycle in &golden.sampled_cycles {
        if cycle + 1 >= golden.trace.num_cycles() {
            continue;
        }
        let nd = c.num_dffs();
        let prev_state = golden.trace.state_bits_at(cycle - 1, nd);
        let prev_values = settle(c, &topo, &prev_state, golden.trace.inputs_at(cycle - 1));
        let new_state = golden.trace.state_bits_at(cycle, nd);
        let next_state = golden.trace.state_bits_at(cycle + 1, nd);
        let inputs = golden.trace.inputs_at(cycle);
        // Every 37th edge across the entire core (structure-independent).
        for i in (0..topo.edges().len()).step_by(37) {
            let e = EdgeId::from_index(i);
            let frozen_val = prev_values[topo.edge(e).source.index()];
            let oracle = frozen_edge_latch(c, &topo, &new_state, inputs, e, frozen_val);
            let latched = ev.latch_cycle(
                &prev_values,
                &new_state,
                inputs,
                Some(FaultSpec { edge: e, extra: d }),
            );
            assert_eq!(latched, oracle, "edge {e} at cycle {cycle}");
            checked += 1;
            if latched != next_state {
                erring += 1;
            }
        }
    }
    assert!(checked > 300, "covered a real sample ({checked})");
    assert!(erring > 0, "some frozen edges corrupt state ({erring})");
}
