//! The fidelity regression matrix: every combination of the engine's
//! performance knobs — toggle pre-filter, convergence early-exit, the
//! incremental divergence-cone replay, the batch lane width, the
//! incremental timing-aware (delta) engine, the timing-aware batch lane
//! width, and the equivalence-class collapse — produces the exact same
//! per-injection outcomes. The knobs change only the cost of the answer,
//! never the answer.

use delayavf::{prepare_golden_seeded, sample_edges, InjectionOutcome, Injector};
use delayavf_netlist::{EdgeId, Topology};
use delayavf_rvcore::{Core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_timing::{Picos, TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

struct Setup {
    core: Core,
    topo: Topology,
    timing: TimingModel,
    golden: delayavf::GoldenRun<MemEnv>,
    edges: Vec<EdgeId>,
}

fn setup() -> Setup {
    let core = delayavf_rvcore::build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
    let w = Kernel::Libfibcall.build(Scale::Tiny);
    let p = w.assemble().expect("workload assembles");
    let env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &p);
    let golden = prepare_golden_seeded(&core.circuit, &topo, &env, w.max_cycles, 5, 11);
    assert!(golden.trace.halted(), "tiny workload halts");
    let edges = sample_edges(&topo.structure_edges(&core.circuit, "alu").unwrap(), 40, 11);
    Setup {
        core,
        topo,
        timing,
        golden,
        edges,
    }
}

/// One knob assignment of the fidelity matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Knobs {
    toggle_filter: bool,
    early_exit: bool,
    incremental: bool,
    delta_timing: bool,
    collapse: bool,
    lanes: usize,
    timing_lanes: usize,
}

const REFERENCE: Knobs = Knobs {
    toggle_filter: true,
    early_exit: true,
    incremental: true,
    delta_timing: true,
    collapse: true,
    lanes: 64,
    timing_lanes: 64,
};

fn run_matrix_point(s: &Setup, k: Knobs) -> Vec<InjectionOutcome> {
    let mut inj = Injector::new(&s.core.circuit, &s.topo, &s.timing, &s.golden, 500);
    inj.set_toggle_filter(k.toggle_filter);
    inj.set_early_exit(k.early_exit);
    inj.set_incremental(k.incremental);
    inj.set_delta_timing(k.delta_timing);
    inj.set_collapse(k.collapse);
    inj.set_lanes(k.lanes);
    inj.set_timing_lanes(k.timing_lanes);
    let extra = s.timing.clock_period() * 9 / 10;
    // Whole-cycle batches, as the delay sweep issues them: the
    // timing-aware replays for all 40 edges share lane-packed batches
    // (when timing_lanes > 1), so the timing_lanes axis is exercised by
    // every matrix point. A scalar `inject` loop returns the same values
    // — pinned by the dedicated axis test below.
    let pairs: Vec<(EdgeId, Picos)> = s.edges.iter().map(|&e| (e, extra)).collect();
    let mut outcomes = Vec::new();
    for &cycle in &s.golden.sampled_cycles {
        if cycle + 1 >= s.golden.trace.num_cycles() {
            continue;
        }
        outcomes.extend(inj.inject_batch(cycle, &pairs));
    }
    outcomes
}

#[test]
fn every_knob_combination_yields_identical_outcomes() {
    let s = setup();
    let reference = run_matrix_point(&s, REFERENCE);
    assert!(
        reference.iter().any(|o| o.visible),
        "the sample must contain program-visible faults for the matrix to mean anything"
    );
    assert!(
        reference
            .iter()
            .any(|o| !o.dynamic_set.is_empty() && !o.visible),
        "... and masked-after-reaching faults, which exercise the replay"
    );
    for toggle_filter in [true, false] {
        for early_exit in [true, false] {
            for incremental in [true, false] {
                for delta_timing in [true, false] {
                    for collapse in [true, false] {
                        for lanes in [1, 64] {
                            for timing_lanes in [1, 64] {
                                let k = Knobs {
                                    toggle_filter,
                                    early_exit,
                                    incremental,
                                    delta_timing,
                                    collapse,
                                    lanes,
                                    timing_lanes,
                                };
                                if k == REFERENCE {
                                    continue;
                                }
                                let outcomes = run_matrix_point(&s, k);
                                assert_eq!(outcomes, reference, "outcomes changed with {k:?}");
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The timing_lanes axis in isolation, against the other batching contract:
/// a scalar [`Injector::inject`] loop, the batched entry point at
/// `timing_lanes = 1` (the escape hatch), the 64-lane `u64` path and the
/// 256- and 512-lane wide-word paths all return identical outcomes in
/// identical order.
#[test]
fn timing_lane_width_never_changes_batched_outcomes() {
    let s = setup();
    let extra = s.timing.clock_period() * 9 / 10;
    let pairs: Vec<(EdgeId, Picos)> = s.edges.iter().map(|&e| (e, extra)).collect();

    let mut scalar = Injector::new(&s.core.circuit, &s.topo, &s.timing, &s.golden, 500);
    let mut reference = Vec::new();
    for &cycle in &s.golden.sampled_cycles {
        if cycle + 1 >= s.golden.trace.num_cycles() {
            continue;
        }
        for &(e, x) in &pairs {
            reference.push(scalar.inject(cycle, e, x));
        }
    }

    for timing_lanes in [1usize, 2, 64, 256, 512] {
        let mut inj = Injector::new(&s.core.circuit, &s.topo, &s.timing, &s.golden, 500);
        inj.set_timing_lanes(timing_lanes);
        let mut outcomes = Vec::new();
        for &cycle in &s.golden.sampled_cycles {
            if cycle + 1 >= s.golden.trace.num_cycles() {
                continue;
            }
            outcomes.extend(inj.inject_batch(cycle, &pairs));
        }
        assert_eq!(
            outcomes, reference,
            "inject_batch at timing_lanes={timing_lanes} diverged from the scalar inject loop"
        );
        let stats = &inj.stats;
        if timing_lanes == 1 {
            assert_eq!(stats.batched_timing_replays, 0, "no batches at width 1");
            assert_eq!(stats.timing_lanes_occupied, 0, "no lanes at width 1");
        } else {
            assert!(
                stats.batched_timing_replays > 0,
                "width {timing_lanes} batches: {stats:?}"
            );
            assert_eq!(
                stats.timing_lane_utilization(),
                1.0,
                "slots count scheduled lanes, so every scheduled lane is occupied"
            );
        }
    }
}

/// The lanes axis in isolation: the bit-parallel replay engine at widths
/// 1 (the scalar escape hatch), 2, the 64-lane `u64` path and the 256- and
/// 512-lane wide-word paths all return identical outcomes in identical
/// order, with lane accounting that always reads fully utilized.
#[test]
fn replay_lane_width_never_changes_batched_outcomes() {
    let s = setup();
    let extra = s.timing.clock_period() * 9 / 10;
    let pairs: Vec<(EdgeId, Picos)> = s.edges.iter().map(|&e| (e, extra)).collect();

    let mut reference = None;
    for lanes in [1usize, 2, 64, 256, 512] {
        let mut inj = Injector::new(&s.core.circuit, &s.topo, &s.timing, &s.golden, 500);
        inj.set_lanes(lanes);
        let mut outcomes = Vec::new();
        for &cycle in &s.golden.sampled_cycles {
            if cycle + 1 >= s.golden.trace.num_cycles() {
                continue;
            }
            // Mirror the campaign driver: run step 1 for the whole cycle,
            // batch the replays through `prefill_failures` (the entry point
            // the lanes knob gates), then classify each injection.
            let parts = inj.dynamically_reachable_batch(cycle, &pairs);
            inj.prefill_failures(cycle + 1, parts.iter().map(|(_, set)| set.clone()));
            outcomes.extend(
                parts
                    .into_iter()
                    .map(|(reached, set)| inj.classify_injection(cycle, reached, set)),
            );
        }
        let stats = &inj.stats;
        if lanes == 1 {
            assert_eq!(stats.batched_replays, 0, "no batches at width 1");
            assert_eq!(stats.lanes_occupied, 0, "no lanes at width 1");
        } else {
            assert!(
                stats.batched_replays > 0,
                "width {lanes} batches: {stats:?}"
            );
            assert_eq!(
                stats.lane_utilization(),
                1.0,
                "slots count scheduled lanes, so every scheduled lane is occupied"
            );
        }
        match &reference {
            None => reference = Some(outcomes),
            Some(r) => assert_eq!(
                &outcomes, r,
                "inject_batch at lanes={lanes} diverged from the scalar baseline"
            ),
        }
    }
}
