//! The fidelity regression matrix: every combination of the engine's
//! performance knobs — toggle pre-filter, convergence early-exit, the
//! incremental divergence-cone replay, the batch lane width, and the
//! incremental timing-aware (delta) engine — produces the exact same
//! per-injection outcomes. The knobs change only the cost of the answer,
//! never the answer.

use delayavf::{prepare_golden_seeded, sample_edges, InjectionOutcome, Injector};
use delayavf_netlist::{EdgeId, Topology};
use delayavf_rvcore::{Core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_timing::{TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

struct Setup {
    core: Core,
    topo: Topology,
    timing: TimingModel,
    golden: delayavf::GoldenRun<MemEnv>,
    edges: Vec<EdgeId>,
}

fn setup() -> Setup {
    let core = delayavf_rvcore::build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
    let w = Kernel::Libfibcall.build(Scale::Tiny);
    let p = w.assemble().expect("workload assembles");
    let env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &p);
    let golden = prepare_golden_seeded(&core.circuit, &topo, &env, w.max_cycles, 5, 11);
    assert!(golden.trace.halted(), "tiny workload halts");
    let edges = sample_edges(&topo.structure_edges(&core.circuit, "alu").unwrap(), 40, 11);
    Setup {
        core,
        topo,
        timing,
        golden,
        edges,
    }
}

/// One knob assignment of the fidelity matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Knobs {
    toggle_filter: bool,
    early_exit: bool,
    incremental: bool,
    delta_timing: bool,
    lanes: usize,
}

const REFERENCE: Knobs = Knobs {
    toggle_filter: true,
    early_exit: true,
    incremental: true,
    delta_timing: true,
    lanes: 64,
};

fn run_matrix_point(s: &Setup, k: Knobs) -> Vec<InjectionOutcome> {
    let mut inj = Injector::new(&s.core.circuit, &s.topo, &s.timing, &s.golden, 500);
    inj.set_toggle_filter(k.toggle_filter);
    inj.set_early_exit(k.early_exit);
    inj.set_incremental(k.incremental);
    inj.set_delta_timing(k.delta_timing);
    inj.set_lanes(k.lanes);
    let extra = s.timing.clock_period() * 9 / 10;
    let mut outcomes = Vec::new();
    for &cycle in &s.golden.sampled_cycles {
        if cycle + 1 >= s.golden.trace.num_cycles() {
            continue;
        }
        for &e in &s.edges {
            outcomes.push(inj.inject(cycle, e, extra));
        }
    }
    outcomes
}

#[test]
fn every_knob_combination_yields_identical_outcomes() {
    let s = setup();
    let reference = run_matrix_point(&s, REFERENCE);
    assert!(
        reference.iter().any(|o| o.visible),
        "the sample must contain program-visible faults for the matrix to mean anything"
    );
    assert!(
        reference
            .iter()
            .any(|o| !o.dynamic_set.is_empty() && !o.visible),
        "... and masked-after-reaching faults, which exercise the replay"
    );
    for toggle_filter in [true, false] {
        for early_exit in [true, false] {
            for incremental in [true, false] {
                for delta_timing in [true, false] {
                    for lanes in [1, 64] {
                        let k = Knobs {
                            toggle_filter,
                            early_exit,
                            incremental,
                            delta_timing,
                            lanes,
                        };
                        if k == REFERENCE {
                            continue;
                        }
                        let outcomes = run_matrix_point(&s, k);
                        assert_eq!(outcomes, reference, "outcomes changed with {k:?}");
                    }
                }
            }
        }
    }
}
