//! The sharded campaign engine's headline guarantee, checked on the real
//! gate-level core: for any worker-thread count the campaigns return
//! results — including ORACE statistics and the merged injector cache
//! counters — bit-for-bit identical to a serial run.

use delayavf::{
    delay_avf_campaign_records, delay_avf_campaign_with_stats, prepare_golden_seeded, sample_edges,
    savf_campaign_with_stats, savf_per_bit_campaign, spatial_double_strike_campaign,
    CampaignConfig, ReplayOptions,
};
use delayavf_netlist::{DffId, Topology};
use delayavf_rvcore::{Core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_timing::{TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

struct Setup {
    core: Core,
    topo: Topology,
    timing: TimingModel,
    golden: delayavf::GoldenRun<MemEnv>,
}

fn setup() -> Setup {
    let core = delayavf_rvcore::build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
    let w = Kernel::Libfibcall.build(Scale::Tiny);
    let p = w.assemble().expect("workload assembles");
    let env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &p);
    let golden = prepare_golden_seeded(&core.circuit, &topo, &env, w.max_cycles, 8, 17);
    assert!(golden.trace.halted());
    Setup {
        core,
        topo,
        timing,
        golden,
    }
}

#[test]
fn all_campaigns_are_thread_count_invariant_on_the_real_core() {
    let s = setup();
    let edges = sample_edges(
        &s.topo.structure_edges(&s.core.circuit, "alu").unwrap(),
        30,
        17,
    );
    let dffs: Vec<DffId> = s
        .core
        .circuit
        .structure("lsu")
        .unwrap()
        .dffs()
        .iter()
        .copied()
        .take(12)
        .collect();

    let config = CampaignConfig {
        delay_fractions: vec![0.5, 0.9],
        compute_orace: true,
        due_slack: 500,
        threads: 1,
        incremental: true,
        delta_timing: true,
        lanes: 64,
        timing_lanes: 64,
        collapse: true,
        ci_target: None,
        strata: 4,
        sample_seed: 7,
    };
    let serial_opts = ReplayOptions::new(500, 1);
    let (serial_rows, serial_stats) = delay_avf_campaign_with_stats(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &config,
    );
    assert!(serial_stats.event_sims > 0, "the sweep did real work");
    // Delta timing is the default: every timing-aware simulation ran on the
    // incremental engine against a cached golden waveform, none fell back.
    assert!(
        serial_stats.golden_waveform_builds > 0,
        "delta-on sweeps build golden waveforms: {serial_stats:?}"
    );
    assert_eq!(
        serial_stats.full_event_fallbacks, 0,
        "delta-on sweeps never fall back to the full event simulator"
    );
    // The full event simulator remains available as the exact baseline: the
    // rows match byte-for-byte and the delta counters stay at zero.
    let (off_rows, off_stats) = delay_avf_campaign_with_stats(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &config.clone().with_delta_timing(false),
    );
    assert_eq!(off_rows, serial_rows, "delta timing never changes results");
    assert_eq!(off_stats.golden_waveform_builds, 0, "delta off builds none");
    assert_eq!(off_stats.delta_events, 0, "delta off processes no deltas");
    assert_eq!(
        off_stats.full_event_fallbacks, off_stats.event_sims,
        "delta off runs every simulation on the full engine"
    );
    let (serial_savf, serial_savf_stats) = savf_campaign_with_stats(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &dffs,
        serial_opts,
    );
    let (serial_row, serial_records) = delay_avf_campaign_records(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        0.9,
        serial_opts,
    );
    let serial_per_bit = savf_per_bit_campaign(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &dffs,
        serial_opts,
    );
    let serial_spatial = spatial_double_strike_campaign(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &dffs,
        serial_opts,
    );

    for threads in [2, 4] {
        let cfg = config.clone().with_threads(threads);
        let opts = ReplayOptions::new(500, threads);
        let (rows, stats) = delay_avf_campaign_with_stats(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &edges,
            &cfg,
        );
        assert_eq!(rows, serial_rows, "sweep rows with {threads} threads");
        assert_eq!(
            stats, serial_stats,
            "injector counters with {threads} threads"
        );

        let (savf, savf_stats) =
            savf_campaign_with_stats(&s.core.circuit, &s.topo, &s.timing, &s.golden, &dffs, opts);
        assert_eq!(savf, serial_savf, "sAVF with {threads} threads");
        assert_eq!(
            savf_stats, serial_savf_stats,
            "sAVF counters with {threads} threads"
        );

        let (row, records) = delay_avf_campaign_records(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &edges,
            0.9,
            opts,
        );
        assert_eq!(row, serial_row, "records row with {threads} threads");
        assert_eq!(
            records, serial_records,
            "record order with {threads} threads"
        );

        let per_bit =
            savf_per_bit_campaign(&s.core.circuit, &s.topo, &s.timing, &s.golden, &dffs, opts);
        assert_eq!(per_bit, serial_per_bit, "per-bit with {threads} threads");

        let spatial = spatial_double_strike_campaign(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &dffs,
            opts,
        );
        assert_eq!(spatial, serial_spatial, "spatial with {threads} threads");
    }
}

/// The bit-parallel batching layer's guarantee, on a threads × lanes grid:
/// every lane width returns the same campaign rows, and at a fixed lane
/// width every counter — including the new batch counters — is
/// thread-count invariant.
#[test]
fn batch_counters_are_thread_invariant_at_every_lane_width() {
    use std::collections::HashMap;

    let s = setup();
    // Decoder edges at fractions near the full clock period: these latch
    // wrong values on this workload, so the sweep actually replays (and
    // therefore batches); ALU faults are fully masked here.
    let edges = sample_edges(
        &s.topo.structure_edges(&s.core.circuit, "decoder").unwrap(),
        30,
        17,
    );
    let dffs: Vec<DffId> = s
        .core
        .circuit
        .structure("lsu")
        .unwrap()
        .dffs()
        .iter()
        .copied()
        .take(12)
        .collect();
    let config = CampaignConfig {
        delay_fractions: vec![0.9, 1.0],
        compute_orace: true,
        due_slack: 500,
        threads: 1,
        incremental: true,
        delta_timing: true,
        lanes: 64,
        timing_lanes: 64,
        collapse: true,
        ci_target: None,
        strata: 4,
        sample_seed: 7,
    };
    let (base_rows, _) = delay_avf_campaign_with_stats(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &config,
    );
    let (base_savf, _) = savf_campaign_with_stats(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &dffs,
        ReplayOptions::new(500, 1),
    );

    let mut sweep_stats_by_lanes = HashMap::new();
    let mut savf_stats_by_lanes = HashMap::new();
    for lanes in [1usize, 2, 64, 256] {
        for threads in [1usize, 2, 4] {
            let cfg = config.clone().with_threads(threads).with_lanes(lanes);
            let (rows, stats) = delay_avf_campaign_with_stats(
                &s.core.circuit,
                &s.topo,
                &s.timing,
                &s.golden,
                &edges,
                &cfg,
            );
            assert_eq!(
                rows, base_rows,
                "sweep rows, lanes={lanes} threads={threads}"
            );
            let first = *sweep_stats_by_lanes.entry(lanes).or_insert(stats);
            assert_eq!(
                stats, first,
                "sweep counters thread-invariant at lanes={lanes} (threads={threads})"
            );

            let opts = ReplayOptions::new(500, threads).with_lanes(lanes);
            let (savf, savf_stats) = savf_campaign_with_stats(
                &s.core.circuit,
                &s.topo,
                &s.timing,
                &s.golden,
                &dffs,
                opts,
            );
            assert_eq!(savf, base_savf, "sAVF, lanes={lanes} threads={threads}");
            let first = *savf_stats_by_lanes.entry(lanes).or_insert(savf_stats);
            assert_eq!(
                savf_stats, first,
                "sAVF counters thread-invariant at lanes={lanes} (threads={threads})"
            );
        }
    }

    // lanes = 1 never batches; wide configurations do.
    for stats_by_lanes in [&sweep_stats_by_lanes, &savf_stats_by_lanes] {
        let scalar = &stats_by_lanes[&1];
        assert_eq!(scalar.batched_replays, 0, "no batches at lanes = 1");
        assert_eq!(scalar.lanes_occupied, 0, "no lanes at lanes = 1");
        let wide = &stats_by_lanes[&64];
        assert!(wide.batched_replays > 0, "wide config batches: {wide:?}");
        assert!(wide.lanes_occupied > 0, "wide config occupies lanes");
        // The number of distinct scenarios replayed through the batch engine
        // does not depend on the lane width, only on the workload.
        assert_eq!(
            stats_by_lanes[&2].lanes_occupied, wide.lanes_occupied,
            "scenario count is lane-width invariant"
        );
        assert_eq!(
            stats_by_lanes[&256].lanes_occupied, wide.lanes_occupied,
            "the 256-lane word path replays the same scenarios"
        );
        // Lane slots count scheduled lanes, not allocated carrier width:
        // whenever batches ran at all, utilization is exactly 1.0 — a
        // partially-filled final chunk contributes only the slots it
        // actually carries.
        for (&lanes, stats) in stats_by_lanes {
            if lanes > 1 {
                assert_eq!(
                    stats.lane_utilization(),
                    1.0,
                    "lane accounting at lanes={lanes}: {stats:?}"
                );
            }
        }
    }
}

/// The equivalence-class collapse layer's guarantee, on a collapse ×
/// threads × lanes grid: collapse on and off return identical delay-sweep
/// rows at every thread count and lane width, and the four collapse
/// counters — `collapsed_edges`, `class_representatives`,
/// `formally_discharged_ace`, `formally_discharged_unace` — are invariant
/// across both the thread count and the lane width (they count class
/// structure and certificates, not batching), and exactly zero with
/// collapse off.
#[test]
fn collapse_counters_are_thread_and_lane_invariant() {
    use std::collections::HashMap;

    let s = setup();
    // Decoder edges: this structure has real collapse classes (buffer-like
    // chains) on the core, so the member-redirect path is exercised.
    let edges = sample_edges(
        &s.topo.structure_edges(&s.core.circuit, "decoder").unwrap(),
        30,
        17,
    );
    let config = CampaignConfig {
        delay_fractions: vec![0.9, 1.0],
        compute_orace: true,
        due_slack: 500,
        threads: 1,
        incremental: true,
        delta_timing: true,
        lanes: 64,
        timing_lanes: 64,
        collapse: true,
        ci_target: None,
        strata: 4,
        sample_seed: 7,
    };
    let (base_rows, base_stats) = delay_avf_campaign_with_stats(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &config,
    );
    assert!(
        base_stats.collapsed_edges > 0,
        "the collapse layer fires on decoder edges: {base_stats:?}"
    );
    assert!(
        base_stats.class_representatives > 0,
        "representatives were actually replayed: {base_stats:?}"
    );
    assert!(
        base_stats.formally_discharged_ace + base_stats.formally_discharged_unace > 0,
        "the semi-formal discharge fired on decoder flip groups: {base_stats:?}"
    );

    let mut stats_by_point = HashMap::new();
    let mut collapse_counters = HashMap::new();
    for collapse in [true, false] {
        for threads in [1usize, 2, 4] {
            for lanes in [1usize, 64] {
                let cfg = config
                    .clone()
                    .with_collapse(collapse)
                    .with_threads(threads)
                    .with_lanes(lanes);
                let (rows, stats) = delay_avf_campaign_with_stats(
                    &s.core.circuit,
                    &s.topo,
                    &s.timing,
                    &s.golden,
                    &edges,
                    &cfg,
                );
                assert_eq!(
                    rows, base_rows,
                    "sweep rows, collapse={collapse} threads={threads} lanes={lanes}"
                );
                // Full counter set is thread-invariant at a fixed
                // (collapse, lanes) point ...
                let first = *stats_by_point.entry((collapse, lanes)).or_insert(stats);
                assert_eq!(
                    stats, first,
                    "counters thread-invariant at collapse={collapse} lanes={lanes} \
                     (threads={threads})"
                );
                // ... and the collapse counters are additionally lane-width
                // invariant: members and certificates are discharged before
                // any batch is formed.
                let quad = (
                    stats.collapsed_edges,
                    stats.class_representatives,
                    stats.formally_discharged_ace,
                    stats.formally_discharged_unace,
                );
                let first_quad = *collapse_counters.entry(collapse).or_insert(quad);
                assert_eq!(
                    quad, first_quad,
                    "collapse counters lane/thread-invariant at collapse={collapse} \
                     (threads={threads}, lanes={lanes})"
                );
                if !collapse {
                    assert_eq!(
                        quad,
                        (0, 0, 0, 0),
                        "collapse off runs the exact per-edge baseline"
                    );
                }
            }
        }
    }
}

/// The timing-aware batching layer's guarantee, on a threads × timing_lanes
/// grid: every timing lane width (scalar, narrow u64, the 256- and 512-lane
/// wide words) returns the same delay-sweep rows, and at a fixed width every
/// counter — including the batched timing-replay counters — is thread-count
/// invariant.
#[test]
fn timing_batch_counters_are_thread_invariant_at_every_lane_width() {
    use std::collections::HashMap;

    let s = setup();
    let edges = sample_edges(
        &s.topo.structure_edges(&s.core.circuit, "decoder").unwrap(),
        30,
        17,
    );
    let config = CampaignConfig {
        delay_fractions: vec![0.9, 1.0],
        compute_orace: true,
        due_slack: 500,
        threads: 1,
        incremental: true,
        delta_timing: true,
        lanes: 64,
        timing_lanes: 64,
        collapse: true,
        ci_target: None,
        strata: 4,
        sample_seed: 7,
    };
    let (base_rows, _) = delay_avf_campaign_with_stats(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &config,
    );

    let mut stats_by_width = HashMap::new();
    for timing_lanes in [1usize, 2, 64, 256, 512] {
        for threads in [1usize, 2, 4] {
            let cfg = config
                .clone()
                .with_threads(threads)
                .with_timing_lanes(timing_lanes);
            let (rows, stats) = delay_avf_campaign_with_stats(
                &s.core.circuit,
                &s.topo,
                &s.timing,
                &s.golden,
                &edges,
                &cfg,
            );
            assert_eq!(
                rows, base_rows,
                "sweep rows, timing_lanes={timing_lanes} threads={threads}"
            );
            let first = *stats_by_width.entry(timing_lanes).or_insert(stats);
            assert_eq!(
                stats, first,
                "counters thread-invariant at timing_lanes={timing_lanes} (threads={threads})"
            );
        }
    }

    // timing_lanes = 1 routes every timing replay to the scalar delta
    // engine; wider configurations batch.
    let scalar = &stats_by_width[&1];
    assert_eq!(
        scalar.batched_timing_replays, 0,
        "no timing batches at timing_lanes = 1"
    );
    assert_eq!(
        scalar.timing_lanes_occupied, 0,
        "no timing lanes at timing_lanes = 1"
    );
    let wide = &stats_by_width[&64];
    assert!(
        wide.batched_timing_replays > 0,
        "wide config batches timing replays: {wide:?}"
    );
    assert!(
        wide.timing_lanes_occupied > 0,
        "wide config occupies timing lanes"
    );
    // The number of distinct timing scenarios replayed through the batch
    // engine does not depend on the lane width, only on the workload.
    assert_eq!(
        stats_by_width[&2].timing_lanes_occupied, wide.timing_lanes_occupied,
        "timing scenario count is lane-width invariant"
    );
    assert_eq!(
        stats_by_width[&256].timing_lanes_occupied, wide.timing_lanes_occupied,
        "the 256-lane word path replays the same scenarios"
    );
    assert_eq!(
        stats_by_width[&512].timing_lanes_occupied, wide.timing_lanes_occupied,
        "the 512-lane word path replays the same scenarios"
    );
    // Wider words pack the same scenarios into fewer batches.
    assert!(
        stats_by_width[&256].batched_timing_replays <= stats_by_width[&2].batched_timing_replays,
        "wider words never need more batches"
    );
    assert!(
        stats_by_width[&512].batched_timing_replays <= stats_by_width[&256].batched_timing_replays,
        "512-lane words never need more batches than 256-lane words"
    );
    // Timing lane slots count scheduled lanes, not allocated carrier width:
    // the 32-edge warm-ALU shape that used to read 0.5 at timing_lanes = 64
    // now reads exactly 1.0, and so does every other width that batches.
    for (&width, stats) in &stats_by_width {
        if width > 1 {
            assert_eq!(
                stats.timing_lane_utilization(),
                1.0,
                "timing lane accounting at timing_lanes={width}: {stats:?}"
            );
        }
    }
    // Every scenario that the scalar engine replays timing-aware is
    // accounted for: the total of event simulations is width-invariant.
    assert_eq!(
        scalar.event_sims, wide.event_sims,
        "timing replay count is width-invariant"
    );
}
