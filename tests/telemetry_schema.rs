//! The observability stream's contract: every line a campaign emits is a
//! flat JSON object that validates against the versioned telemetry schema
//! (`v`, `t_ms`, `event` plus the event's required fields), timestamps are
//! monotone, each campaign's stream is bracketed by `campaign_start` /
//! `campaign_end`, and — the zero-cost half of the contract — the observed
//! campaign returns results bit-identical to the unobserved one.
//!
//! Checked twice: once at the core-crate layer against an in-memory sink
//! with checkpointing enabled (so `checkpoint_flush` events appear), and
//! once end-to-end through the bench harness by running the fig10
//! experiment at the tiny scale with `--telemetry` pointed at a real file,
//! exactly as the CLI wires it.

use std::fs;
use std::path::PathBuf;

use delayavf::{
    delay_avf_campaign_observed, delay_avf_campaign_with_stats, prepare_golden_seeded,
    sample_edges, validate_line, CampaignConfig, CheckpointSpec, JsonlTelemetry, RunContext,
    TELEMETRY_SCHEMA_VERSION,
};
use delayavf_bench::{fig10, Harness, Observability, Opts};
use delayavf_netlist::Topology;
use delayavf_rvcore::{CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_timing::{TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

fn tmpdir() -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "delayavf-telemetry-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Validates a whole stream: every line parses against the schema, `t_ms`
/// never decreases, and the stream both starts with a `campaign_start` and
/// ends with a `campaign_end`. Returns the validated event names in order.
fn validate_stream(text: &str) -> Vec<String> {
    let mut events = Vec::new();
    let mut last_t = 0.0f64;
    for (i, line) in text.lines().enumerate() {
        let event = validate_line(line).unwrap_or_else(|e| {
            panic!(
                "line {} fails the v{TELEMETRY_SCHEMA_VERSION} schema: {e}\n  {line}",
                i + 1
            )
        });
        // validate_line guarantees t_ms exists and is numeric.
        let t = delayavf::parse_flat_object(line)
            .unwrap()
            .into_iter()
            .find(|(k, _)| k == "t_ms")
            .and_then(|(_, v)| v.as_num())
            .unwrap();
        assert!(
            t >= last_t,
            "t_ms went backwards at line {}: {t} < {last_t}",
            i + 1
        );
        last_t = t;
        events.push(event);
    }
    assert!(!events.is_empty(), "the stream is empty");
    assert_eq!(events.first().unwrap(), "campaign_start");
    assert_eq!(events.last().unwrap(), "campaign_end");
    events
}

#[test]
fn campaign_telemetry_validates_and_never_changes_results() {
    let core = delayavf_rvcore::build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
    let w = Kernel::Libfibcall.build(Scale::Tiny);
    let p = w.assemble().expect("workload assembles");
    let env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &p);
    let golden = prepare_golden_seeded(&core.circuit, &topo, &env, w.max_cycles, 8, 17);
    let edges = sample_edges(
        &topo.structure_edges(&core.circuit, "decoder").unwrap(),
        12,
        17,
    );
    let config = CampaignConfig {
        delay_fractions: vec![0.9],
        compute_orace: true,
        due_slack: 500,
        threads: 2,
        incremental: true,
        delta_timing: true,
        lanes: 64,
        timing_lanes: 64,
        collapse: true,
        ci_target: None,
        strata: 4,
        sample_seed: 7,
    };

    let want =
        delay_avf_campaign_with_stats(&core.circuit, &topo, &timing, &golden, &edges, &config);

    let dir = tmpdir();
    let sink = JsonlTelemetry::new(Vec::new());
    let ctx = RunContext::new(
        &sink,
        Some(CheckpointSpec::new(dir.join("sweep.ckpt"), 1, false)),
    );
    let got = delay_avf_campaign_observed(
        &core.circuit,
        &topo,
        &timing,
        &golden,
        &edges,
        &config,
        &ctx,
    )
    .unwrap();
    assert_eq!(got, want, "observation changed the report");

    let text = String::from_utf8(sink.into_inner()).unwrap();
    let events = validate_stream(&text);
    let count = |name: &str| events.iter().filter(|e| *e == name).count();
    assert_eq!(count("campaign_start"), 1);
    assert_eq!(count("campaign_end"), 1);
    assert!(count("shard_heartbeat") > 0, "no heartbeats in:\n{text}");
    assert!(count("phase_timers") > 0, "no phase timers in:\n{text}");
    assert!(count("stats_delta") > 0, "no stats deltas in:\n{text}");
    assert!(
        count("checkpoint_flush") > 0,
        "checkpointing at every=1 emitted no flush events in:\n{text}"
    );
    fs::remove_dir_all(dir).unwrap();
}

#[test]
fn fig10_tiny_telemetry_stream_validates_end_to_end() {
    let dir = tmpdir();
    let telemetry = dir.join("fig10.jsonl");
    let mut h = Harness::build();
    h.obs = Observability::create(Some(&telemetry), Some(&dir.join("ckpt")), 4, false).unwrap();
    let opts = Opts::quick();
    let exp = fig10(&mut h, &opts).unwrap();
    assert!(!exp.to_string().is_empty());

    let text = fs::read_to_string(&telemetry).unwrap();
    let events = validate_stream(&text);
    // fig10 runs one delay sweep and one sAVF campaign per structure row,
    // all onto the shared stream: several bracketed campaigns, balanced.
    let starts = events.iter().filter(|e| *e == "campaign_start").count();
    let ends = events.iter().filter(|e| *e == "campaign_end").count();
    assert!(starts > 1, "expected several campaigns, got {starts}");
    assert_eq!(starts, ends, "unbalanced campaign brackets");
    assert!(
        events.iter().any(|e| e == "checkpoint_flush"),
        "no checkpoint flushes despite --checkpoint-dir"
    );
    fs::remove_dir_all(dir).unwrap();
}
