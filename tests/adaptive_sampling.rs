//! Statistical-oracle test layer for adaptive stratified sampling.
//!
//! The adaptive campaigns (`ci_target` set) trade exhaustiveness for
//! replay budget, so their correctness story cannot be "bit-identical to
//! the uniform path". Instead this suite pins three statistical contracts
//! on configurations small enough to evaluate *exhaustively*:
//!
//! 1. **Degenerate equivalence** — a `ci_target` too tight to ever retire
//!    a stratum forces the plan to sample every site, and then the
//!    adaptive tallies must equal the exhaustive campaign's exactly, for
//!    all five campaign kinds.
//! 2. **Calibration** — across many sampling seeds at a moderate
//!    `ci_target`, every reported 95% interval must contain the
//!    exhaustively-computed DelayAVF (the composed Wilson interval is
//!    conservative, so full containment is the expected behavior, not a
//!    lucky draw).
//! 3. **Determinism** — the adaptive report is a pure function of the
//!    knobs: thread count and lane widths must not change a single bit of
//!    the rows, the estimate, or the merged counters.

use delayavf::{
    delay_avf_campaign_records, delay_avf_campaign_with_stats, prepare_golden, sample_edges,
    savf_campaign_with_stats, savf_per_bit_campaign, spatial_double_strike_campaign,
    CampaignConfig, GoldenRun, ReplayOptions,
};
use delayavf_netlist::{Circuit, CircuitBuilder, DffId, EdgeId, Topology};
use delayavf_sim::ConstEnvironment;
use delayavf_timing::{TechLibrary, TimingModel};

/// Accumulator fixture: wide enough that the site population spans a few
/// thousand (cycle, edge) pairs, tiny enough that exhaustive evaluation
/// stays fast. Errors persist forever, so visibility tracks dynamic reach.
struct Fixture {
    circuit: Circuit,
    topo: Topology,
    timing: TimingModel,
    golden: GoldenRun<ConstEnvironment>,
    edges: Vec<EdgeId>,
    dffs: Vec<DffId>,
}

fn fixture(cycle_samples: usize) -> Fixture {
    let mut b = CircuitBuilder::new();
    let step = b.input_word("step", 8);
    let acc = b.reg_word("acc", 8, 0);
    let next = b.in_structure("adder", |b| b.add(&acc.q(), &step));
    b.drive_word(&acc, &next);
    b.output_word("acc", &acc.q());
    let circuit = b.finish().unwrap();
    let topo = Topology::new(&circuit);
    let timing = TimingModel::analyze(&circuit, &topo, &TechLibrary::nangate45_like());
    let env = ConstEnvironment::new(vec![0x35]);
    let golden = prepare_golden(&circuit, &topo, &env, 96, cycle_samples);
    let edges = sample_edges(&topo.structure_edges(&circuit, "adder").unwrap(), 48, 17);
    let dffs = circuit.structure("adder").unwrap().dffs().to_vec();
    Fixture {
        circuit,
        topo,
        timing,
        golden,
        edges,
        dffs,
    }
}

fn config(ci_target: Option<f64>, threads: usize) -> CampaignConfig {
    CampaignConfig {
        delay_fractions: vec![0.5, 0.9],
        compute_orace: false,
        due_slack: 30,
        threads,
        incremental: true,
        delta_timing: true,
        lanes: 64,
        timing_lanes: 64,
        collapse: true,
        ci_target,
        strata: 4,
        sample_seed: 7,
    }
}

fn replay_opts(ci_target: Option<f64>) -> ReplayOptions {
    ReplayOptions::new(30, 1)
        .with_ci_target(ci_target)
        .with_strata(4)
        .with_sample_seed(7)
}

/// A `ci_target` no stratum can ever meet: the plan must walk the entire
/// population, and then every exhaustive tally must match the uniform
/// campaign's bit for bit — for all five campaign kinds.
#[test]
fn exhausting_ci_target_reproduces_the_uniform_campaigns() {
    let f = fixture(24);
    let tight = Some(1e-9);

    // Delay sweep.
    let (uniform, _) = delay_avf_campaign_with_stats(
        &f.circuit,
        &f.topo,
        &f.timing,
        &f.golden,
        &f.edges,
        &config(None, 1),
    );
    let (adaptive, stats) = delay_avf_campaign_with_stats(
        &f.circuit,
        &f.topo,
        &f.timing,
        &f.golden,
        &f.edges,
        &config(tight, 1),
    );
    assert_eq!(uniform.len(), adaptive.len());
    for (u, a) in uniform.iter().zip(&adaptive) {
        assert_eq!(u.delay_fraction, a.delay_fraction);
        assert_eq!(u.injections, a.injections);
        assert_eq!(u.static_hits, a.static_hits);
        assert_eq!(u.dynamic_hits, a.dynamic_hits);
        assert_eq!(u.delay_ace_hits, a.delay_ace_hits);
        assert_eq!(u.sdc_hits, a.sdc_hits);
        assert_eq!(u.due_hits, a.due_hits);
        let est = a.adaptive.expect("adaptive run reports its estimate");
        assert_eq!(est.sampled, est.population, "nothing may be skipped");
        // Full sampling makes the stratified point the exhaustive mean.
        assert!(
            (est.point - u.delay_avf()).abs() < 1e-12,
            "stratified point {} != exhaustive {}",
            est.point,
            u.delay_avf()
        );
        assert!(est.lo <= est.point && est.point <= est.hi);
        assert!(u.adaptive.is_none(), "uniform rows carry no estimate");
    }
    assert_eq!(stats.adaptive_replays_saved, 0);

    // Particle-strike sAVF.
    let (u_savf, _) = savf_campaign_with_stats(
        &f.circuit,
        &f.topo,
        &f.timing,
        &f.golden,
        &f.dffs,
        replay_opts(None),
    );
    let (a_savf, a_stats) = savf_campaign_with_stats(
        &f.circuit,
        &f.topo,
        &f.timing,
        &f.golden,
        &f.dffs,
        replay_opts(tight),
    );
    assert_eq!(u_savf, a_savf);
    assert_eq!(a_stats.adaptive_replays_saved, 0);

    // Per-bit sAVF.
    let u_bits = savf_per_bit_campaign(
        &f.circuit,
        &f.topo,
        &f.timing,
        &f.golden,
        &f.dffs,
        replay_opts(None),
    );
    let a_bits = savf_per_bit_campaign(
        &f.circuit,
        &f.topo,
        &f.timing,
        &f.golden,
        &f.dffs,
        replay_opts(tight),
    );
    assert_eq!(u_bits, a_bits);

    // Spatial double strikes.
    let u_spatial = spatial_double_strike_campaign(
        &f.circuit,
        &f.topo,
        &f.timing,
        &f.golden,
        &f.dffs,
        replay_opts(None),
    );
    let a_spatial = spatial_double_strike_campaign(
        &f.circuit,
        &f.topo,
        &f.timing,
        &f.golden,
        &f.dffs,
        replay_opts(tight),
    );
    assert_eq!(u_spatial, a_spatial);

    // Record-keeping campaign: the adaptive run emits records in (round,
    // cycle, edge) order, so compare as sorted multisets.
    let (u_row, mut u_records) = delay_avf_campaign_records(
        &f.circuit,
        &f.topo,
        &f.timing,
        &f.golden,
        &f.edges,
        0.9,
        replay_opts(None),
    );
    let (a_row, mut a_records) = delay_avf_campaign_records(
        &f.circuit,
        &f.topo,
        &f.timing,
        &f.golden,
        &f.edges,
        0.9,
        replay_opts(tight),
    );
    assert_eq!(u_row.injections, a_row.injections);
    assert_eq!(u_row.delay_ace_hits, a_row.delay_ace_hits);
    u_records.sort_by_key(|r| (r.cycle, r.edge.index()));
    a_records.sort_by_key(|r| (r.cycle, r.edge.index()));
    assert_eq!(u_records, a_records);
    let est = a_row.adaptive.expect("records row reports its estimate");
    assert_eq!(est.sampled, est.population);
}

/// Calibration: across many sampling seeds at a moderate target, every
/// reported interval must contain the exhaustive DelayAVF — and the runs
/// must not be secretly exhaustive, or the test would prove nothing.
#[test]
fn adaptive_intervals_contain_the_exhaustive_value_across_seeds() {
    let f = fixture(48);
    let (uniform, _) = delay_avf_campaign_with_stats(
        &f.circuit,
        &f.topo,
        &f.timing,
        &f.golden,
        &f.edges,
        &config(None, 0),
    );
    let exact: Vec<f64> = uniform.iter().map(|r| r.delay_avf()).collect();
    let mut any_early = false;
    for seed in 0..25u64 {
        let cfg = CampaignConfig {
            sample_seed: seed,
            threads: 0,
            ..config(Some(0.1), 0)
        };
        let (rows, stats) = delay_avf_campaign_with_stats(
            &f.circuit, &f.topo, &f.timing, &f.golden, &f.edges, &cfg,
        );
        for (row, &truth) in rows.iter().zip(&exact) {
            let est = row.adaptive.expect("adaptive estimate present");
            assert!(
                est.lo <= truth && truth <= est.hi,
                "seed {seed}, d={}: exhaustive {truth} outside [{}, {}]",
                row.delay_fraction,
                est.lo,
                est.hi
            );
            if est.sampled < est.population {
                any_early = true;
            }
        }
        assert_eq!(
            stats.adaptive_replays_saved % 2,
            0,
            "savings count whole skipped sites across both fractions"
        );
    }
    assert!(
        any_early,
        "no seed ever retired a stratum early; the calibration is vacuous"
    );
}

/// Adaptive runs must save real replay budget at a moderate target while
/// still meeting it: the whole point of the subsystem.
#[test]
fn adaptive_saves_replays_at_a_moderate_target() {
    let f = fixture(48);
    let (rows, stats) = delay_avf_campaign_with_stats(
        &f.circuit,
        &f.topo,
        &f.timing,
        &f.golden,
        &f.edges,
        &config(Some(0.1), 0),
    );
    assert!(stats.strata_active > 0);
    assert!(
        stats.adaptive_replays_saved > 0,
        "a 0.1 half-width target must retire strata early on this fixture"
    );
    for row in &rows {
        let est = row.adaptive.unwrap();
        assert!(est.sampled < est.population);
        assert!(
            est.half_width() <= 0.25,
            "composed interval blew up: half-width {}",
            est.half_width()
        );
    }
}

/// The adaptive report is a pure function of the knobs: worker threads
/// must not change a single bit anywhere (results, estimate, every merged
/// counter), and lane widths must not change any result or any adaptive
/// counter (lane packing legitimately shifts engine-internal cache
/// counters, exactly as on the uniform path).
#[test]
fn adaptive_reports_are_thread_and_lane_invariant() {
    let f = fixture(24);
    let run = |threads: usize, lanes: usize, timing_lanes: usize| {
        let cfg = CampaignConfig {
            lanes,
            timing_lanes,
            ..config(Some(0.08), threads)
        };
        let sweep = delay_avf_campaign_with_stats(
            &f.circuit, &f.topo, &f.timing, &f.golden, &f.edges, &cfg,
        );
        let opts = replay_opts(Some(0.08))
            .with_threads(threads)
            .with_lanes(lanes)
            .with_timing_lanes(timing_lanes);
        let savf =
            savf_campaign_with_stats(&f.circuit, &f.topo, &f.timing, &f.golden, &f.dffs, opts);
        (sweep, savf)
    };
    let ((rows, stats), (savf, savf_stats)) = run(1, 64, 64);
    for threads in [2usize, 4] {
        let ((t_rows, t_stats), (t_savf, t_savf_stats)) = run(threads, 64, 64);
        assert_eq!(rows, t_rows, "threads={threads}");
        assert_eq!(stats, t_stats, "threads={threads}");
        assert_eq!(savf, t_savf, "threads={threads}");
        assert_eq!(savf_stats, t_savf_stats, "threads={threads}");
    }
    for (lanes, timing_lanes) in [(1usize, 64usize), (64, 1)] {
        let ((l_rows, l_stats), (l_savf, _)) = run(1, lanes, timing_lanes);
        assert_eq!(rows, l_rows, "lanes={lanes} timing_lanes={timing_lanes}");
        assert_eq!(savf, l_savf, "lanes={lanes} timing_lanes={timing_lanes}");
        assert_eq!(stats.strata_active, l_stats.strata_active);
        assert_eq!(stats.strata_retired_early, l_stats.strata_retired_early);
        assert_eq!(stats.adaptive_replays_saved, l_stats.adaptive_replays_saved);
    }
}

/// The validation errors for the adaptive knobs are part of the CLI/config
/// contract — pin their exact phrasing.
#[test]
fn adaptive_knob_validation_errors_are_pinned() {
    assert_eq!(
        delayavf::validate_ci_target(0.0).unwrap_err(),
        "ci_target must be in (0, 0.5), got 0"
    );
    assert_eq!(
        delayavf::validate_ci_target(0.5).unwrap_err(),
        "ci_target must be in (0, 0.5), got 0.5"
    );
    assert_eq!(
        delayavf::validate_strata(0).unwrap_err(),
        "strata must be in 1..=16, got 0"
    );
    assert_eq!(
        delayavf::validate_strata(17).unwrap_err(),
        "strata must be in 1..=16, got 17"
    );
    assert_eq!(delayavf::validate_ci_target(0.05).unwrap(), 0.05);
    assert_eq!(delayavf::validate_strata(16).unwrap(), 16);
}
