//! SDC vs DUE classification (paper §II-A): a program-visible failure is
//! either a *silent data corruption* (wrong output, normal completion) or a
//! *detected unrecoverable error* (crash/trap/hang). Both are demonstrated
//! deterministically on the gate-level core.

use delayavf::{FailureClass, GoldenRun, Injector};
use delayavf_isa::assemble;
use delayavf_netlist::Topology;
use delayavf_rvcore::{build_core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_sim::GoldenTrace;
use delayavf_timing::{TechLibrary, TimingModel};

#[test]
fn corrupted_data_is_sdc_and_forced_halt_is_due() {
    let core = build_core(CoreConfig::default());
    let c = &core.circuit;
    let topo = Topology::new(c);
    let timing = TimingModel::analyze(c, &topo, &TechLibrary::nangate45_like());
    let program = assemble(
        r#"
        li   a0, 100
        li   a1, 23
        add  a2, a0, a1
        li   t0, 0x10004
        sw   a2, 0(t0)
        ebreak
        "#,
    )
    .expect("assembles");
    let env = MemEnv::new(c, DEFAULT_RAM_BYTES, &program);

    // Checkpoint the cycle right after a2 (x12) is written.
    let mut probe = env.clone();
    let (trace, _) = GoldenTrace::record(c, &topo, &mut probe, 200, &[]);
    let x12 = core.handle.regfile.storage(12);
    let nd = c.num_dffs();
    let boundary = (1..trace.num_cycles())
        .find(|&cy| {
            let a = trace.state_bits_at(cy, nd);
            let b = trace.state_bits_at(cy + 1, nd);
            x12.iter().any(|d| a[d.index()] != b[d.index()])
        })
        .expect("x12 written")
        + 1;
    let mut env2 = env.clone();
    let (trace, cps) = GoldenTrace::record(c, &topo, &mut env2, 200, &[boundary]);
    let golden = GoldenRun {
        trace,
        checkpoints: cps.into_iter().map(|cp| (cp.cycle, cp)).collect(),
        sampled_cycles: vec![boundary],
    };
    let mut inj = Injector::new(c, &topo, &timing, &golden, 200);

    // Flipping a bit of the exit value: the program completes normally but
    // prints the wrong code — a silent data corruption.
    let victim = x12[3]; // bit 3 of a2: 123 ^ 8 = 115, still a clean exit
    assert_eq!(
        inj.group_failure(boundary, &[victim]),
        FailureClass::Sdc,
        "wrong exit code with normal completion"
    );

    // Flipping the sticky halt flag: the core stops as if it hit EBREAK
    // before writing the exit code — a detected unrecoverable error.
    let halt_flag = c
        .dffs()
        .find(|(_, d)| d.name() == "control/halt_flag")
        .expect("halt flag exists")
        .0;
    assert_eq!(
        inj.group_failure(boundary, &[halt_flag]),
        FailureClass::Due,
        "abnormal termination without output corruption"
    );

    // And a harmless flip (a register the program never reads again).
    let x9 = core.handle.regfile.storage(9)[0];
    assert_eq!(
        inj.group_failure(boundary, &[x9]),
        FailureClass::Masked,
        "dead-register flips are architecturally masked"
    );
}
