//! The paper's Figure 11 / Observation 5 mechanism, reproduced
//! deterministically: single-error-correcting ECC drives the register
//! file's particle-strike AVF to zero, yet a *single* small delay fault on
//! the write-enable path produces a multi-bit codeword error that defeats
//! the correction — and even exhibits **ACE compounding** (no individual
//! bit is ACE, the group is).

use delayavf::{GoldenRun, Injector};
use delayavf_isa::assemble;
use delayavf_netlist::{Driver, EdgeId, Topology};
use delayavf_rvcore::{build_core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_sim::{Environment, GoldenTrace};
use delayavf_timing::{TechLibrary, TimingModel};

#[test]
fn delay_fault_on_write_enable_defeats_ecc() {
    let core = build_core(CoreConfig {
        ecc_regfile: true,
        ..CoreConfig::default()
    });
    let c = &core.circuit;
    let topo = Topology::new(c);
    let timing = TimingModel::analyze(c, &topo, &TechLibrary::nangate45_like());

    // a2 (x12) receives a fresh many-bit value, which is then consumed and
    // exported, so corrupting the write is program-visible.
    let program = assemble(
        r#"
        li   a0, 0x5a5
        li   a1, 0x2da
        add  a2, a0, a1
        xor  a3, a2, a0
        li   t0, 0x10004
        sw   a3, 0(t0)
        ebreak
        "#,
    )
    .expect("assembles");
    let env = MemEnv::new(c, DEFAULT_RAM_BYTES, &program);

    // Find the cycle in which x12's storage is written.
    let mut probe_env = env.clone();
    let (trace, _) = GoldenTrace::record(c, &topo, &mut probe_env, 200, &[]);
    assert!(probe_env.halted());
    let x12 = core.handle.regfile.storage(12);
    let nd = c.num_dffs();
    let write_cycle = (1..trace.num_cycles())
        .find(|&cy| {
            let a = trace.state_bits_at(cy, nd);
            let b = trace.state_bits_at(cy + 1, nd);
            x12.iter().any(|d| a[d.index()] != b[d.index()])
        })
        .expect("x12 is written during the program");

    // Re-record with a checkpoint at the write cycle.
    let mut env2 = env.clone();
    let (trace, cps) = GoldenTrace::record(c, &topo, &mut env2, 200, &[write_cycle]);
    let golden = GoldenRun {
        trace,
        checkpoints: cps.into_iter().map(|cp| (cp.cycle, cp)).collect(),
        sampled_cycles: vec![write_cycle],
    };

    // Locate the write-enable path for x12: the hold mux of bit 0 selects
    // between held value and write data; its select net is driven by the
    // per-register enable AND gate. Delaying an *input edge of that AND*
    // delays the enable seen by all 38 codeword bits at once.
    let bit0 = x12[0];
    let mux_gate = match c.net(c.dff(bit0).d()).driver() {
        Driver::Gate(g) => g,
        other => panic!("hold mux expected, got {other:?}"),
    };
    let sel_net = c.gate(mux_gate).inputs()[0];
    let and_gate = match c.net(sel_net).driver() {
        Driver::Gate(g) => g,
        other => panic!("enable AND expected, got {other:?}"),
    };
    let enable_edges: Vec<EdgeId> = topo.gate_in_edges(and_gate).collect();
    assert_eq!(enable_edges.len(), 2, "and(one-hot, we)");

    let mut inj = Injector::new(c, &topo, &timing, &golden, 200);
    let extra = timing.clock_period(); // a full-period delay: enable never fires
    let mut demonstrated = false;
    for e in enable_edges {
        let outcome = inj.inject(write_cycle, e, extra);
        if outcome.dynamic_set.is_empty() {
            continue;
        }
        // The whole register write is suppressed: every toggling codeword
        // bit errs simultaneously.
        assert!(
            outcome.is_multi_bit(),
            "enable-path fault produces a multi-bit codeword error"
        );
        assert!(
            outcome.visible,
            "ECC cannot correct the multi-bit error: program-visible (Observation 5)"
        );
        // ACE compounding (Table III, regfile ECC): no single bit of the
        // set is individually ACE — each lone flip would be corrected.
        let or = inj.or_ace(write_cycle + 1, &outcome.dynamic_set);
        assert!(!or, "every individual bit is corrected by SEC ECC");
        demonstrated = true;
    }
    assert!(demonstrated, "at least one enable edge carries the fault");
}
