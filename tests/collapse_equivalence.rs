//! The collapse criterion's ground truth, checked on the real gate-level
//! core *without* the collapse machinery in the loop: every member of an
//! equivalence class — an edge whose [`delayavf::CollapsePlan`] representative
//! is a different edge — produces the exact same dynamically reachable set
//! and the exact same [`delayavf::InjectionOutcome`] as its representative,
//! at every sampled cycle, for every extra delay probed, and under every
//! combination of the toggle-filter, incremental-replay and delta-timing
//! knobs. The collapse layer never has to guess: redirecting a member to
//! its representative returns the answer the member would have computed.

use delayavf::{prepare_golden_seeded, CollapsePlan, Injector};
use delayavf_netlist::{EdgeId, Topology};
use delayavf_rvcore::{Core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_timing::{Picos, TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

struct Setup {
    core: Core,
    topo: Topology,
    timing: TimingModel,
    golden: delayavf::GoldenRun<MemEnv>,
}

fn setup() -> Setup {
    let core = delayavf_rvcore::build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
    let w = Kernel::Libfibcall.build(Scale::Tiny);
    let p = w.assemble().expect("workload assembles");
    let env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &p);
    let golden = prepare_golden_seeded(&core.circuit, &topo, &env, w.max_cycles, 5, 11);
    assert!(golden.trace.halted(), "tiny workload halts");
    Setup {
        core,
        topo,
        timing,
        golden,
    }
}

/// All (member, representative) pairs of the core's collapse plan, capped
/// to keep the knob matrix affordable. The cap drops coverage, not
/// fidelity: the classes kept are checked exhaustively.
fn member_pairs(s: &Setup, cap: usize) -> Vec<(EdgeId, EdgeId)> {
    let plan = CollapsePlan::build(&s.core.circuit, &s.topo, &s.timing);
    assert!(
        plan.num_members() > 0,
        "the core must contain non-trivial equivalence classes"
    );
    let pairs: Vec<(EdgeId, EdgeId)> = (0..s.topo.edges().len())
        .map(EdgeId::from_index)
        .filter_map(|e| {
            let rep = plan.representative(e);
            (rep != e).then_some((e, rep))
        })
        .take(cap)
        .collect();
    assert!(!pairs.is_empty());
    pairs
}

#[test]
fn every_class_member_matches_its_representative_under_every_knob() {
    let s = setup();
    let pairs = member_pairs(&s, 24);
    let clock = s.timing.clock_period();
    let extras: Vec<Picos> = vec![clock / 2, clock * 9 / 10];

    for toggle_filter in [true, false] {
        for incremental in [true, false] {
            for delta_timing in [true, false] {
                // Collapse stays OFF on both injectors: this test validates
                // the criterion itself, so the member's answer must come
                // from a real per-edge replay, not from the redirect whose
                // soundness is under test.
                let mut member_inj =
                    Injector::new(&s.core.circuit, &s.topo, &s.timing, &s.golden, 500);
                let mut rep_inj =
                    Injector::new(&s.core.circuit, &s.topo, &s.timing, &s.golden, 500);
                for inj in [&mut member_inj, &mut rep_inj] {
                    inj.set_collapse(false);
                    inj.set_toggle_filter(toggle_filter);
                    inj.set_incremental(incremental);
                    inj.set_delta_timing(delta_timing);
                }
                for &cycle in &s.golden.sampled_cycles {
                    if cycle + 1 >= s.golden.trace.num_cycles() {
                        continue;
                    }
                    for &(member, rep) in &pairs {
                        for &extra in &extras {
                            let m = member_inj.dynamically_reachable(cycle, member, extra);
                            let r = rep_inj.dynamically_reachable(cycle, rep, extra);
                            assert_eq!(
                                m, r,
                                "dynamic set, member {member} vs rep {rep} at cycle {cycle} \
                                 extra {extra} (toggle={toggle_filter} inc={incremental} \
                                 delta={delta_timing})"
                            );
                            let mo = member_inj.inject(cycle, member, extra);
                            let ro = rep_inj.inject(cycle, rep, extra);
                            assert_eq!(
                                mo, ro,
                                "outcome, member {member} vs rep {rep} at cycle {cycle} \
                                 extra {extra} (toggle={toggle_filter} inc={incremental} \
                                 delta={delta_timing})"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// With collapse ON, a member's served outcome is byte-identical to the
/// per-edge baseline, and serving it costs no event simulation beyond the
/// one its representative already paid for.
#[test]
fn redirected_members_are_served_from_the_representative_replay() {
    let s = setup();
    let pairs = member_pairs(&s, 24);
    let extra = s.timing.clock_period() * 9 / 10;

    let mut baseline = Injector::new(&s.core.circuit, &s.topo, &s.timing, &s.golden, 500);
    baseline.set_collapse(false);
    let mut collapsed = Injector::new(&s.core.circuit, &s.topo, &s.timing, &s.golden, 500);

    for &cycle in &s.golden.sampled_cycles {
        if cycle + 1 >= s.golden.trace.num_cycles() {
            continue;
        }
        for &(member, rep) in &pairs {
            // Representative first, member second: the member's query must
            // hit the per-cycle representative cache.
            let sims_before = collapsed.stats.event_sims;
            let _ = collapsed.dynamically_reachable(cycle, rep, extra);
            let sims_after_rep = collapsed.stats.event_sims;
            let m = collapsed.dynamically_reachable(cycle, member, extra);
            assert_eq!(
                collapsed.stats.event_sims, sims_after_rep,
                "the member ran its own simulation (cycle {cycle}, member {member})"
            );
            assert!(sims_after_rep >= sims_before, "counters only grow");
            let want = baseline.dynamically_reachable(cycle, member, extra);
            assert_eq!(
                m, want,
                "served set differs from the baseline (cycle {cycle}, member {member} rep {rep})"
            );
        }
    }
    assert!(
        collapsed.stats.collapsed_edges > 0,
        "members were actually redirected: {:?}",
        collapsed.stats
    );
}
