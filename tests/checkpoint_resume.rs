//! The checkpoint subsystem's headline guarantee, checked on the real
//! gate-level core for all five campaigns: a run that is interrupted at a
//! checkpoint boundary and resumed produces a report **byte-identical** to
//! the uninterrupted run — same result rows, same merged injector
//! counters — under every `threads × lanes` combination, and a checkpoint
//! written by a different campaign (different inputs, knobs or kind) is
//! rejected with the pinned `checkpoint mismatch` error instead of being
//! silently merged.
//!
//! "Interrupted at a checkpoint boundary" is simulated exactly the way a
//! crash manifests: the atomic flush protocol guarantees the on-disk file
//! is always a complete prefix-closed snapshot, so we truncate a finished
//! checkpoint down to a strict subset of its `unit` lines and resume from
//! that.

use std::fs;
use std::path::{Path, PathBuf};

use delayavf::{
    delay_avf_campaign_observed, delay_avf_campaign_records, delay_avf_campaign_records_observed,
    delay_avf_campaign_with_stats, prepare_golden_seeded, sample_edges, savf_campaign_observed,
    savf_campaign_with_stats, savf_per_bit_campaign, savf_per_bit_campaign_observed,
    spatial_double_strike_campaign, spatial_double_strike_campaign_observed, CampaignConfig,
    CheckpointSpec, GoldenRun, ReplayOptions, RunContext, NULL_TELEMETRY,
};
use delayavf_netlist::{DffId, Topology};
use delayavf_rvcore::{Core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_timing::{TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

struct Setup {
    core: Core,
    topo: Topology,
    timing: TimingModel,
    golden: GoldenRun<MemEnv>,
}

fn setup() -> Setup {
    let core = delayavf_rvcore::build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
    let w = Kernel::Libfibcall.build(Scale::Tiny);
    let p = w.assemble().expect("workload assembles");
    let env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &p);
    let golden = prepare_golden_seeded(&core.circuit, &topo, &env, w.max_cycles, 8, 17);
    assert!(golden.trace.halted());
    Setup {
        core,
        topo,
        timing,
        golden,
    }
}

fn tmpdir() -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "delayavf-ckpt-it-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn ctx(path: &Path, every: usize, resume: bool) -> RunContext<'static> {
    RunContext::new(
        &NULL_TELEMETRY,
        Some(CheckpointSpec::new(path, every, resume)),
    )
}

/// Simulates a crash mid-campaign: keeps the validated header and every
/// `keep_every`-th completed unit, discarding the rest. Returns how many
/// units survive (asserting the cut was a strict, non-empty subset, so the
/// resumed run genuinely mixes stored and recomputed work).
fn truncate_units(path: &Path, keep_every: usize) -> usize {
    let text = fs::read_to_string(path).unwrap();
    let mut out = String::new();
    let (mut seen, mut kept) = (0usize, 0usize);
    for line in text.lines() {
        if line.starts_with("unit ") {
            if seen % keep_every == 0 {
                out.push_str(line);
                out.push('\n');
                kept += 1;
            }
            seen += 1;
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    assert!(
        kept > 0 && kept < seen,
        "truncation must leave a strict non-empty subset ({kept} of {seen})"
    );
    fs::write(path, out).unwrap();
    kept
}

#[test]
fn resumed_reports_are_byte_identical_across_the_threads_by_lanes_grid() {
    let s = setup();
    let dir = tmpdir();
    let edges = sample_edges(
        &s.topo.structure_edges(&s.core.circuit, "decoder").unwrap(),
        24,
        17,
    );
    let dffs: Vec<DffId> = s
        .core
        .circuit
        .structure("lsu")
        .unwrap()
        .dffs()
        .iter()
        .copied()
        .take(10)
        .collect();
    let base_config = CampaignConfig {
        delay_fractions: vec![0.9, 1.0],
        compute_orace: true,
        due_slack: 500,
        threads: 1,
        incremental: true,
        delta_timing: true,
        lanes: 64,
        timing_lanes: 64,
        collapse: true,
        ci_target: None,
        strata: 4,
        sample_seed: 7,
    };

    for (threads, lanes) in [(1usize, 64usize), (2, 1), (4, 64)] {
        let config = base_config.clone().with_threads(threads).with_lanes(lanes);
        let opts = ReplayOptions::new(500, threads).with_lanes(lanes);
        let tag = format!("t{threads}-l{lanes}");

        // ---- Delay sweep ----------------------------------------------
        let want = delay_avf_campaign_with_stats(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &edges,
            &config,
        );
        let path = dir.join(format!("sweep-{tag}.ckpt"));
        let fresh = delay_avf_campaign_observed(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &edges,
            &config,
            &ctx(&path, 3, false),
        )
        .unwrap();
        assert_eq!(fresh, want, "checkpointing changed the sweep ({tag})");
        truncate_units(&path, 2);
        let resumed = delay_avf_campaign_observed(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &edges,
            &config,
            &ctx(&path, 3, true),
        )
        .unwrap();
        assert_eq!(resumed, want, "resumed sweep differs ({tag})");
        // A resume from the now-complete file is pure cache replay.
        let replayed = delay_avf_campaign_observed(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &edges,
            &config,
            &ctx(&path, 3, true),
        )
        .unwrap();
        assert_eq!(replayed, want, "complete-file resume differs ({tag})");

        // ---- sAVF ------------------------------------------------------
        let want =
            savf_campaign_with_stats(&s.core.circuit, &s.topo, &s.timing, &s.golden, &dffs, opts);
        let path = dir.join(format!("savf-{tag}.ckpt"));
        let fresh = savf_campaign_observed(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &dffs,
            opts,
            &ctx(&path, 5, false),
        )
        .unwrap();
        assert_eq!(fresh, want, "checkpointing changed sAVF ({tag})");
        truncate_units(&path, 3);
        let resumed = savf_campaign_observed(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &dffs,
            opts,
            &ctx(&path, 5, true),
        )
        .unwrap();
        assert_eq!(resumed, want, "resumed sAVF differs ({tag})");

        // ---- Records ---------------------------------------------------
        let want = delay_avf_campaign_records(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &edges,
            0.9,
            opts,
        );
        let path = dir.join(format!("records-{tag}.ckpt"));
        let fresh = delay_avf_campaign_records_observed(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &edges,
            0.9,
            opts,
            &ctx(&path, 2, false),
        )
        .unwrap();
        assert_eq!(fresh, want, "checkpointing changed records ({tag})");
        truncate_units(&path, 2);
        let resumed = delay_avf_campaign_records_observed(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &edges,
            0.9,
            opts,
            &ctx(&path, 2, true),
        )
        .unwrap();
        assert_eq!(resumed, want, "resumed records differ ({tag})");

        // ---- Per-bit sAVF ----------------------------------------------
        let want =
            savf_per_bit_campaign(&s.core.circuit, &s.topo, &s.timing, &s.golden, &dffs, opts);
        let path = dir.join(format!("perbit-{tag}.ckpt"));
        let fresh = savf_per_bit_campaign_observed(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &dffs,
            opts,
            &ctx(&path, 3, false),
        )
        .unwrap();
        assert_eq!(fresh, want, "checkpointing changed per-bit ({tag})");
        truncate_units(&path, 2);
        let resumed = savf_per_bit_campaign_observed(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &dffs,
            opts,
            &ctx(&path, 3, true),
        )
        .unwrap();
        assert_eq!(resumed, want, "resumed per-bit differs ({tag})");

        // ---- Spatial double strike -------------------------------------
        let want = spatial_double_strike_campaign(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &dffs,
            opts,
        );
        let path = dir.join(format!("spatial-{tag}.ckpt"));
        let fresh = spatial_double_strike_campaign_observed(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &dffs,
            opts,
            &ctx(&path, 4, false),
        )
        .unwrap();
        assert_eq!(fresh, want, "checkpointing changed spatial ({tag})");
        truncate_units(&path, 2);
        let resumed = spatial_double_strike_campaign_observed(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &dffs,
            opts,
            &ctx(&path, 4, true),
        )
        .unwrap();
        assert_eq!(resumed, want, "resumed spatial differs ({tag})");
    }
    fs::remove_dir_all(dir).unwrap();
}

/// The adaptive campaigns (`ci_target` set) run the same checkpoint
/// protocol under their own kinds (`delay_sweep_adaptive`, …): a run
/// killed at a checkpoint boundary and resumed is byte-identical to the
/// uninterrupted one — the plan's round sequence is a pure function of
/// the knobs, so stored tallies steer the later rounds exactly as the
/// live ones did. Any drift in the sampling-policy knobs (`ci_target`,
/// `strata`, `sample_seed`), or crossing between the uniform and
/// adaptive kinds, is a pinned `checkpoint mismatch`.
#[test]
fn adaptive_checkpoints_resume_byte_identical_and_reject_knob_drift() {
    let s = setup();
    let dir = tmpdir();
    let edges = sample_edges(
        &s.topo.structure_edges(&s.core.circuit, "decoder").unwrap(),
        24,
        17,
    );
    let dffs: Vec<DffId> = s
        .core
        .circuit
        .structure("lsu")
        .unwrap()
        .dffs()
        .iter()
        .copied()
        .take(10)
        .collect();
    let config = CampaignConfig {
        delay_fractions: vec![0.9, 1.0],
        compute_orace: false,
        due_slack: 500,
        threads: 2,
        incremental: true,
        delta_timing: true,
        lanes: 64,
        timing_lanes: 64,
        collapse: true,
        ci_target: Some(0.15),
        strata: 4,
        sample_seed: 7,
    };

    // ---- Kill-and-resume on the adaptive sweep -------------------------
    let want = delay_avf_campaign_with_stats(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &config,
    );
    let path = dir.join("adaptive-sweep.ckpt");
    let fresh = delay_avf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &config,
        &ctx(&path, 3, false),
    )
    .unwrap();
    assert_eq!(fresh, want, "checkpointing changed the adaptive sweep");
    truncate_units(&path, 2);
    let resumed = delay_avf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &config,
        &ctx(&path, 3, true),
    )
    .unwrap();
    assert_eq!(resumed, want, "resumed adaptive sweep differs");
    // Thread count stays outside the identity on the adaptive path too.
    let resumed = delay_avf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &config.clone().with_threads(4),
        &ctx(&path, 3, true),
    )
    .unwrap();
    assert_eq!(resumed, want, "cross-thread adaptive resume differs");

    // ---- Sampling-policy drift is identity drift -----------------------
    for (label, other) in [
        (
            "ci_target",
            CampaignConfig {
                ci_target: Some(0.1),
                ..config.clone()
            },
        ),
        (
            "strata",
            CampaignConfig {
                strata: 8,
                ..config.clone()
            },
        ),
        (
            "sample_seed",
            CampaignConfig {
                sample_seed: 8,
                ..config.clone()
            },
        ),
    ] {
        let err = delay_avf_campaign_observed(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &edges,
            &other,
            &ctx(&path, 3, true),
        )
        .unwrap_err();
        assert!(
            err.contains("checkpoint mismatch"),
            "{label} drift not pinned: {err}"
        );
    }

    // Turning adaptive sampling off entirely changes the campaign kind.
    let uniform = CampaignConfig {
        ci_target: None,
        ..config.clone()
    };
    let err = delay_avf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &uniform,
        &ctx(&path, 3, true),
    )
    .unwrap_err();
    assert!(
        err.contains("checkpoint mismatch"),
        "adaptive-to-uniform drift not pinned: {err}"
    );

    // ...and a uniform checkpoint must not resume adaptively either.
    let upath = dir.join("uniform-sweep.ckpt");
    delay_avf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &uniform,
        &ctx(&upath, 3, false),
    )
    .unwrap();
    let err = delay_avf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &config,
        &ctx(&upath, 3, true),
    )
    .unwrap_err();
    assert!(
        err.contains("checkpoint mismatch"),
        "uniform-to-adaptive drift not pinned: {err}"
    );

    // ---- The adaptive sAVF driver shares the protocol ------------------
    let opts = ReplayOptions::new(500, 2)
        .with_ci_target(Some(0.15))
        .with_strata(4)
        .with_sample_seed(7);
    let want =
        savf_campaign_with_stats(&s.core.circuit, &s.topo, &s.timing, &s.golden, &dffs, opts);
    let path = dir.join("adaptive-savf.ckpt");
    let fresh = savf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &dffs,
        opts,
        &ctx(&path, 5, false),
    )
    .unwrap();
    assert_eq!(fresh, want, "checkpointing changed adaptive sAVF");
    truncate_units(&path, 3);
    let resumed = savf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &dffs,
        opts,
        &ctx(&path, 5, true),
    )
    .unwrap();
    assert_eq!(resumed, want, "resumed adaptive sAVF differs");
    let err = savf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &dffs,
        opts.with_ci_target(Some(0.1)),
        &ctx(&path, 5, true),
    )
    .unwrap_err();
    assert!(
        err.contains("checkpoint mismatch"),
        "sAVF ci_target drift not pinned: {err}"
    );
    fs::remove_dir_all(dir).unwrap();
}

/// A checkpoint written under one campaign identity must never be merged
/// into another: different inputs (fingerprint), different engine knobs,
/// and a different campaign kind are all pinned `checkpoint mismatch`
/// errors, and a torn file is a `checkpoint parse error`.
#[test]
fn stale_or_foreign_checkpoints_are_rejected_not_merged() {
    let s = setup();
    let dir = tmpdir();
    let edges = sample_edges(
        &s.topo.structure_edges(&s.core.circuit, "decoder").unwrap(),
        12,
        17,
    );
    let dffs: Vec<DffId> = s
        .core
        .circuit
        .structure("lsu")
        .unwrap()
        .dffs()
        .iter()
        .copied()
        .take(6)
        .collect();
    let config = CampaignConfig {
        delay_fractions: vec![0.9],
        compute_orace: false,
        due_slack: 500,
        threads: 2,
        incremental: true,
        delta_timing: true,
        lanes: 64,
        timing_lanes: 64,
        collapse: true,
        ci_target: None,
        strata: 4,
        sample_seed: 7,
    };
    let path = dir.join("sweep.ckpt");
    delay_avf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &config,
        &ctx(&path, 1, false),
    )
    .unwrap();

    // Different fractions → different results fingerprint.
    let other = CampaignConfig {
        delay_fractions: vec![0.8],
        ..config.clone()
    };
    let err = delay_avf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &other,
        &ctx(&path, 1, true),
    )
    .unwrap_err();
    assert!(
        err.contains("checkpoint mismatch"),
        "fraction drift not pinned: {err}"
    );

    // Different counter-shaping knobs (lane width) → different knob hash.
    let other = config.clone().with_lanes(1);
    let err = delay_avf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &other,
        &ctx(&path, 1, true),
    )
    .unwrap_err();
    assert!(
        err.contains("checkpoint mismatch"),
        "knob drift not pinned: {err}"
    );

    // The collapse knob also shapes the counters (collapsed_edges and the
    // discharge counters are zero with collapse off), so a checkpoint
    // written with collapse on must not resume with it off.
    let other = config.clone().with_collapse(false);
    let err = delay_avf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &other,
        &ctx(&path, 1, true),
    )
    .unwrap_err();
    assert!(
        err.contains("checkpoint mismatch"),
        "collapse drift not pinned: {err}"
    );

    // A sweep checkpoint resumed by the sAVF campaign → kind mismatch.
    let err = savf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &dffs,
        ReplayOptions::new(500, 2),
        &ctx(&path, 1, true),
    )
    .unwrap_err();
    assert!(
        err.contains("checkpoint mismatch"),
        "kind drift not pinned: {err}"
    );

    // Thread count is NOT part of the identity: the stats are defined to be
    // thread-invariant, so a resume under a different worker count succeeds
    // and still reproduces the uninterrupted report.
    let want = delay_avf_campaign_with_stats(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &config,
    );
    let resumed = delay_avf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &config.clone().with_threads(4),
        &ctx(&path, 1, true),
    )
    .unwrap();
    assert_eq!(resumed, want, "cross-thread-count resume differs");

    // A torn file (no atomic rename ever produces one, but disks lie) is a
    // loud parse error, not a silent fresh start.
    fs::write(&path, "delayavf-checkpoint v2 delay_sweep\nfingerpri").unwrap();
    let err = delay_avf_campaign_observed(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &config,
        &ctx(&path, 1, true),
    )
    .unwrap_err();
    assert!(
        err.contains("checkpoint parse error"),
        "torn file not pinned: {err}"
    );
    fs::remove_dir_all(dir).unwrap();
}
