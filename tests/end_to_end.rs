//! Cross-crate integration: the full DelayAVF pipeline on the gate-level
//! core with a real workload.

use delayavf::{
    delay_avf_campaign, prepare_golden_seeded, sample_edges, savf_campaign,
    spatial_double_strike_campaign, CampaignConfig, ReplayOptions,
};
use delayavf_netlist::Topology;
use delayavf_rvcore::{Core, CoreConfig, MemEnv, DEFAULT_RAM_BYTES};
use delayavf_timing::{TechLibrary, TimingModel};
use delayavf_workloads::{Kernel, Scale};

struct Setup {
    core: Core,
    topo: Topology,
    timing: TimingModel,
    golden: delayavf::GoldenRun<MemEnv>,
}

fn setup(kernel: Kernel, cycles: usize, seed: u64) -> Setup {
    let core = delayavf_rvcore::build_core(CoreConfig::default());
    let topo = Topology::new(&core.circuit);
    let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
    let w = kernel.build(Scale::Tiny);
    let p = w.assemble().expect("workload assembles");
    let env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &p);
    let golden = prepare_golden_seeded(&core.circuit, &topo, &env, w.max_cycles, cycles, seed);
    assert!(golden.trace.halted(), "tiny workload halts");
    Setup {
        core,
        topo,
        timing,
        golden,
    }
}

#[test]
fn campaign_invariants_hold_on_the_real_core() {
    let s = setup(Kernel::Libstrstr, 8, 3);
    let edges_all = s
        .topo
        .structure_edges(&s.core.circuit, "alu")
        .expect("alu tagged");
    let edges = sample_edges(&edges_all, 50, 3);
    let config = CampaignConfig {
        delay_fractions: vec![0.1, 0.5, 0.9],
        compute_orace: false,
        due_slack: 500,
        threads: 0,
        incremental: true,
        delta_timing: true,
        lanes: 64,
        timing_lanes: 64,
        collapse: true,
        ci_target: None,
        strata: 4,
        sample_seed: 7,
    };
    let rows = delay_avf_campaign(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &edges,
        &config,
    );
    assert_eq!(rows.len(), 3);
    for r in &rows {
        assert!(r.injections > 0);
        assert!(r.static_hits <= r.injections);
        assert!(r.dynamic_hits <= r.static_hits, "{r}");
        assert!(r.delay_ace_hits <= r.dynamic_hits, "{r}");
        assert!(r.multi_bit_hits <= r.dynamic_hits);
    }
    // Static reachability grows with the delay duration.
    assert!(rows[0].static_fraction() <= rows[1].static_fraction());
    assert!(rows[1].static_fraction() <= rows[2].static_fraction());
    // At 10% of the clock almost nothing in the ALU is reachable (Fig. 8).
    assert!(rows[0].static_fraction() < 0.5);
    // At 90% most ALU paths are reachable.
    assert!(rows[2].static_fraction() > 0.5);
}

#[test]
fn campaigns_are_deterministic() {
    let run = || {
        let s = setup(Kernel::Libfibcall, 6, 11);
        let edges = sample_edges(
            &s.topo.structure_edges(&s.core.circuit, "decoder").unwrap(),
            40,
            11,
        );
        delay_avf_campaign(
            &s.core.circuit,
            &s.topo,
            &s.timing,
            &s.golden,
            &edges,
            &CampaignConfig::single_delay(0.9),
        )
    };
    assert_eq!(run(), run(), "same seed, same results");
}

#[test]
fn savf_on_the_lsu_is_bounded_and_deterministic() {
    let s = setup(Kernel::Libstrstr, 6, 5);
    let lsu = s.core.circuit.structure("lsu").unwrap();
    let dffs: Vec<_> = lsu.dffs().iter().copied().take(24).collect();
    let a = savf_campaign(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &dffs,
        ReplayOptions::new(500, 1),
    );
    assert_eq!(a.injections, dffs.len() * s.golden.sampled_cycles.len());
    assert!(a.savf() <= 1.0);
    let b = savf_campaign(
        &s.core.circuit,
        &s.topo,
        &s.timing,
        &s.golden,
        &dffs,
        ReplayOptions::new(500, 2),
    );
    assert_eq!(a, b, "two workers reproduce the serial result exactly");
}

#[test]
fn ecc_register_file_suppresses_single_strike_avf() {
    // Observation 5's baseline: single-bit strikes into ECC-protected
    // storage are corrected on read, so their sAVF is exactly zero.
    let core = delayavf_rvcore::build_core(CoreConfig {
        ecc_regfile: true,
        ..CoreConfig::default()
    });
    let topo = Topology::new(&core.circuit);
    let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
    let w = Kernel::Bubblesort.build(Scale::Tiny);
    let p = w.assemble().unwrap();
    let env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &p);
    let golden = prepare_golden_seeded(&core.circuit, &topo, &env, w.max_cycles, 6, 2);
    let rf = core.circuit.structure("regfile").unwrap();
    let dffs: Vec<_> = rf.dffs().iter().copied().step_by(9).take(40).collect();
    let r = savf_campaign(
        &core.circuit,
        &topo,
        &timing,
        &golden,
        &dffs,
        ReplayOptions::new(500, 0),
    );
    assert_eq!(r.ace_hits, 0, "SEC ECC corrects every single-bit strike");

    // The unprotected register file is *not* immune.
    let core2 = delayavf_rvcore::build_core(CoreConfig {
        ecc_regfile: false,
        ..CoreConfig::default()
    });
    let topo2 = Topology::new(&core2.circuit);
    let timing2 = TimingModel::analyze(&core2.circuit, &topo2, &TechLibrary::nangate45_like());
    let env2 = MemEnv::new(&core2.circuit, DEFAULT_RAM_BYTES, &p);
    let golden2 = prepare_golden_seeded(&core2.circuit, &topo2, &env2, w.max_cycles, 6, 2);
    let rf2 = core2.circuit.structure("regfile").unwrap();
    let dffs2: Vec<_> = rf2.dffs().to_vec();
    let r2 = savf_campaign(
        &core2.circuit,
        &topo2,
        &timing2,
        &golden2,
        &dffs2,
        ReplayOptions::new(500, 0),
    );
    assert!(
        r2.ace_hits > 0,
        "unprotected register file has non-zero sAVF ({r2})"
    );
}

#[test]
fn adjacent_double_strikes_defeat_ecc_where_single_strikes_cannot() {
    // The spatial multi-bit model (Wilkening et al., paper §VIII): two
    // physically adjacent storage bits flip at once. SEC ECC corrects any
    // single flip but mis-corrects double flips, so the double-strike AVF
    // of the ECC register file is non-zero even though its single-strike
    // sAVF is exactly zero.
    let core = delayavf_rvcore::build_core(CoreConfig {
        ecc_regfile: true,
        ..CoreConfig::default()
    });
    let topo = Topology::new(&core.circuit);
    let timing = TimingModel::analyze(&core.circuit, &topo, &TechLibrary::nangate45_like());
    let w = Kernel::Bubblesort.build(Scale::Tiny);
    let p = w.assemble().unwrap();
    let env = MemEnv::new(&core.circuit, DEFAULT_RAM_BYTES, &p);
    let golden = prepare_golden_seeded(&core.circuit, &topo, &env, w.max_cycles, 6, 4);
    // Bits of a handful of architectural registers, in storage order.
    let mut dffs = Vec::new();
    for reg in [10usize, 11, 12, 13, 14] {
        dffs.extend(core.handle.regfile.storage(reg));
    }
    let opts = ReplayOptions::new(500, 0);
    let single = savf_campaign(&core.circuit, &topo, &timing, &golden, &dffs, opts);
    let double =
        spatial_double_strike_campaign(&core.circuit, &topo, &timing, &golden, &dffs, opts);
    assert_eq!(single.ace_hits, 0, "SEC corrects every single strike");
    assert!(
        double.ace_hits > 0,
        "adjacent double strikes mis-correct and become visible ({double})"
    );
}

#[test]
fn section_5c_prefilters_retain_fidelity() {
    // The paper claims its §V-C optimizations "retain fidelity". Check the
    // toggle pre-filter on the real core: with and without it, every
    // injection yields the same dynamically reachable set.
    // Register-file edges are the interesting case: storage nets only
    // toggle when their register is written, so the filter fires often.
    let s = setup(Kernel::Libfibcall, 5, 13);
    let edges = sample_edges(
        &s.topo.structure_edges(&s.core.circuit, "regfile").unwrap(),
        80,
        13,
    );
    let extra = s.timing.clock_period() * 9 / 10;
    let mut with = delayavf::Injector::new(&s.core.circuit, &s.topo, &s.timing, &s.golden, 500);
    let mut without = delayavf::Injector::new(&s.core.circuit, &s.topo, &s.timing, &s.golden, 500);
    // Collapse off on both sides: its quiet-source certificate subsumes the
    // toggle filter's savings, and this test isolates the toggle filter.
    with.set_collapse(false);
    without.set_collapse(false);
    without.set_toggle_filter(false);
    for &cycle in &s.golden.sampled_cycles {
        if cycle + 1 >= s.golden.trace.num_cycles() {
            continue;
        }
        for &e in &edges {
            let a = with.dynamically_reachable(cycle, e, extra);
            let b = without.dynamically_reachable(cycle, e, extra);
            assert_eq!(a, b, "edge {e} cycle {cycle}");
        }
    }
    assert!(
        with.stats.toggle_filtered > 0,
        "the filter actually fired ({:?})",
        with.stats
    );
    assert!(
        with.stats.event_sims < without.stats.event_sims,
        "and actually saved timing-aware simulations"
    );
}
