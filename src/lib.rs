//! Umbrella crate for the DelayAVF reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can depend on a single package. Library users should
//! normally depend on the individual crates instead (most importantly
//! [`delayavf`], the analysis core).

pub use delayavf;
pub use delayavf_isa as isa;
pub use delayavf_netlist as netlist;
pub use delayavf_rvcore as rvcore;
pub use delayavf_sim as sim;
pub use delayavf_timing as timing;
pub use delayavf_workloads as workloads;
